// The self-healing subsystem's contract, bottom-up: the MPAS_FAULT grammar
// round-trips, the HealthMonitor's hysteresis and probation behave exactly
// as specified, machine::degrade scales the model consistently, the
// ReplanEngine's degraded plans pass the analysis verifier and stay within
// the 1.25x acceptance bound of the CPU-only modeled optimum (checked
// through the bench-harness attribution path), and — the headline — the
// closed loop heals device death, gray failures, transfer-corruption
// bursts, and rank stalls while landing bitwise on the fault-free solution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "bench_harness/attribution.hpp"
#include "comm/distributed.hpp"
#include "core/schedule.hpp"
#include "machine/machine_model.hpp"
#include "mesh/mesh_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/fault_env.hpp"
#include "resilience/health/chaos.hpp"
#include "resilience/health/hybrid.hpp"
#include "resilience/health/monitor.hpp"
#include "resilience/health/replan.hpp"
#include "sw/model.hpp"
#include "sw/testcases.hpp"
#include "util/error.hpp"

namespace mpas::resilience::health {
namespace {

// ---------------------------------------------------------------- MPAS_FAULT

TEST(FaultEnv, ParsesEverySpecKind) {
  const auto campaign = parse_fault_campaign(
      "seed=42; drop@5 from=0 to=1 tag=7; corrupt@17 word=2 bit=12 repeat=3; "
      "delay@29; stall rank=2 step=1 ms=5; sdc rank=1 step=3; "
      "transfer-fail@4 buffer=2; transfer-corrupt p=0.25");
  EXPECT_EQ(campaign.seed, 42u);
  ASSERT_EQ(campaign.faults.size(), 7u);
  EXPECT_EQ(campaign.faults[0].kind, FaultKind::MsgDrop);
  EXPECT_EQ(campaign.faults[0].at_event, 5u);
  EXPECT_EQ(campaign.faults[0].from, 0);
  EXPECT_EQ(campaign.faults[0].to, 1);
  EXPECT_EQ(campaign.faults[0].tag, 7);
  EXPECT_EQ(campaign.faults[1].kind, FaultKind::MsgCorrupt);
  EXPECT_EQ(campaign.faults[1].word, 2u);
  EXPECT_EQ(campaign.faults[1].bit, 12u);
  EXPECT_EQ(campaign.faults[1].repeat, 3);
  EXPECT_EQ(campaign.faults[3].kind, FaultKind::RankStall);
  EXPECT_EQ(campaign.faults[3].rank, 2);
  EXPECT_NEAR(campaign.faults[3].stall_seconds, 5e-3, 1e-15);
  EXPECT_EQ(campaign.faults[5].kind, FaultKind::TransferFail);
  EXPECT_EQ(campaign.faults[5].buffer, 2);
  EXPECT_EQ(campaign.faults[6].kind, FaultKind::TransferCorrupt);
  EXPECT_NEAR(campaign.faults[6].probability, 0.25, 1e-15);
}

TEST(FaultEnv, CanonicalRenderingRoundTrips) {
  const auto campaign = parse_fault_campaign(
      "seed=7; drop@5 from=0 to=1; corrupt@17 word=2; delay@29; "
      "stall rank=2 step=1 ms=5; transfer-corrupt p=0.01");
  const std::string text = to_string(campaign);
  const auto again = parse_fault_campaign(text);
  EXPECT_EQ(again.seed, campaign.seed);
  ASSERT_EQ(again.faults.size(), campaign.faults.size());
  for (std::size_t i = 0; i < campaign.faults.size(); ++i) {
    EXPECT_EQ(again.faults[i].kind, campaign.faults[i].kind) << i;
    EXPECT_EQ(again.faults[i].at_event, campaign.faults[i].at_event) << i;
    EXPECT_EQ(again.faults[i].repeat, campaign.faults[i].repeat) << i;
    EXPECT_EQ(again.faults[i].from, campaign.faults[i].from) << i;
    EXPECT_EQ(again.faults[i].stall_seconds, campaign.faults[i].stall_seconds)
        << i;
    EXPECT_EQ(again.faults[i].probability, campaign.faults[i].probability)
        << i;
  }
  // Canonical text is a fixed point.
  EXPECT_EQ(to_string(again), text);
}

TEST(FaultEnv, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_campaign("explode@3"), Error);
  EXPECT_THROW(parse_fault_campaign("drop from=zero"), Error);
  EXPECT_THROW(parse_fault_campaign("drop color=red"), Error);
  EXPECT_THROW(parse_fault_campaign("seed="), Error);
}

TEST(FaultEnv, ArmedCampaignFiresDeterministically) {
  const auto campaign = parse_fault_campaign("seed=9; drop@1 from=0 to=1");
  FaultInjector injector(campaign.seed);
  arm_campaign(injector, campaign);
  EXPECT_TRUE(injector.on_message(0, 1, 3).empty());   // event 0
  EXPECT_FALSE(injector.on_message(0, 1, 3).empty());  // event 1 fires
  EXPECT_TRUE(injector.on_message(0, 1, 3).empty());   // repeat=1 exhausted
}

// ------------------------------------------------------------ HealthMonitor

TEST(HealthMonitor, SlowStepHysteresis) {
  HealthMonitor m;
  m.track("accel");
  // Learn a 1 ms baseline over two clean steps.
  for (std::int64_t s = 0; s < 2; ++s) {
    m.observe_step_time("accel", s, 1e-3);
    m.end_step(s);
  }
  EXPECT_EQ(m.state("accel"), HealthState::Healthy);
  // One slow step is never enough (hysteresis).
  m.observe_step_time("accel", 2, 5e-3);
  m.end_step(2);
  EXPECT_EQ(m.state("accel"), HealthState::Healthy);
  // Second consecutive slow step: Suspect.
  m.observe_step_time("accel", 3, 5e-3);
  m.end_step(3);
  EXPECT_EQ(m.state("accel"), HealthState::Suspect);
  EXPECT_NEAR(m.slowdown("accel"), 5.0, 1e-9);
  // Two more: Quarantined, and the generation moved on every transition.
  const std::uint64_t gen = m.generation();
  m.observe_step_time("accel", 4, 5e-3);
  m.end_step(4);
  m.observe_step_time("accel", 5, 5e-3);
  m.end_step(5);
  EXPECT_EQ(m.state("accel"), HealthState::Quarantined);
  EXPECT_FALSE(m.usable("accel"));
  EXPECT_GT(m.generation(), gen);
}

TEST(HealthMonitor, SuspectClearsAfterCleanStreak) {
  HealthMonitor m;
  m.track("accel");
  for (std::int64_t s = 0; s < 2; ++s) {
    m.observe_step_time("accel", s, 1e-3);
    m.end_step(s);
  }
  for (std::int64_t s = 2; s < 4; ++s) {
    m.observe_step_time("accel", s, 9e-3);
    m.end_step(s);
  }
  ASSERT_EQ(m.state("accel"), HealthState::Suspect);
  // One clean step is not enough; two are.
  m.observe_step_time("accel", 4, 1e-3);
  m.end_step(4);
  EXPECT_EQ(m.state("accel"), HealthState::Suspect);
  m.observe_step_time("accel", 5, 1e-3);
  m.end_step(5);
  EXPECT_EQ(m.state("accel"), HealthState::Healthy);
}

TEST(HealthMonitor, MissedHeartbeatAndRetryBudgetAreBadSignals) {
  HealthMonitor m;
  m.track("rank1");
  // Silence for suspect_after steps: Suspect via missed heartbeats.
  m.end_step(0);
  m.end_step(1);
  EXPECT_EQ(m.state("rank1"), HealthState::Suspect);
  ASSERT_FALSE(m.transitions().empty());
  EXPECT_EQ(m.transitions().back().reason, "missed heartbeat");

  HealthMonitor r;
  r.track("accel");
  // Retries over budget count as bad even with a heartbeat present.
  for (std::int64_t s = 0; s < 2; ++s) {
    r.observe_heartbeat("accel", s);
    r.observe_transfer_retries("accel", 3);  // budget is 2
    r.end_step(s);
  }
  EXPECT_EQ(r.state("accel"), HealthState::Suspect);
  EXPECT_EQ(r.transitions().back().reason, "transfer retries over budget");
}

TEST(HealthMonitor, HardFailureQuarantinesImmediately) {
  HealthMonitor m;
  m.track("accel");
  m.observe_failure("accel", 0, "transfer escalation");
  EXPECT_EQ(m.state("accel"), HealthState::Quarantined);
  ASSERT_EQ(m.transitions().size(), 1u);
  EXPECT_EQ(m.transitions()[0].from, HealthState::Healthy);
}

TEST(HealthMonitor, ProbationBacksOffExponentiallyAndRecovers) {
  HealthMonitor m;
  m.track("accel");
  m.observe_failure("accel", 10, "dead link");
  // First probe is due probe_backoff_start (= 2) steps after quarantine.
  EXPECT_FALSE(m.probe_due("accel", 11));
  EXPECT_TRUE(m.probe_due("accel", 12));
  // Failed probes double the backoff: 2 -> 4 -> 8 -> ... capped at 32.
  m.observe_probe("accel", 12, false);
  EXPECT_FALSE(m.probe_due("accel", 15));
  EXPECT_TRUE(m.probe_due("accel", 16));
  m.observe_probe("accel", 16, false);
  EXPECT_FALSE(m.probe_due("accel", 23));
  EXPECT_TRUE(m.probe_due("accel", 24));
  m.observe_probe("accel", 24, false);  // backoff 16: next at 40
  EXPECT_FALSE(m.probe_due("accel", 39));
  m.observe_probe("accel", 40, false);  // backoff 32: next at 72
  EXPECT_FALSE(m.probe_due("accel", 71));
  m.observe_probe("accel", 72, false);  // capped at 32: next at 104
  EXPECT_FALSE(m.probe_due("accel", 103));
  EXPECT_TRUE(m.probe_due("accel", 104));

  // Successful back-to-back probes promote to Recovered...
  HealthMonitor r;
  r.track("accel");
  r.observe_failure("accel", 0, "dead link");
  r.observe_probe("accel", 2, true);
  EXPECT_EQ(r.state("accel"), HealthState::Quarantined);
  EXPECT_TRUE(r.probe_due("accel", 3));  // confirmation probe, no backoff
  r.observe_probe("accel", 3, true);
  EXPECT_EQ(r.state("accel"), HealthState::Recovered);
  EXPECT_TRUE(r.usable("accel"));
  // ... and clean steps finish the journey back to Healthy.
  for (std::int64_t s = 4; s < 6; ++s) {
    r.observe_step_time("accel", s, 1e-3);
    r.end_step(s);
  }
  EXPECT_EQ(r.state("accel"), HealthState::Healthy);
}

TEST(HealthMonitor, RecoveredEntityGetsNoBenefitOfTheDoubt) {
  HealthMonitor m;
  m.track("accel");
  m.observe_failure("accel", 0, "dead link");
  m.observe_probe("accel", 2, true);
  m.observe_probe("accel", 3, true);
  ASSERT_EQ(m.state("accel"), HealthState::Recovered);
  // A single bad signal right after probation demotes straight to Suspect.
  m.end_step(4);  // missed heartbeat
  EXPECT_EQ(m.state("accel"), HealthState::Suspect);
}

TEST(HealthMonitor, ResetBaselineForgetsLearnedStepTime) {
  HealthMonitor m;
  m.track("host");
  for (std::int64_t s = 0; s < 2; ++s) {
    m.observe_step_time("host", s, 1e-3);
    m.end_step(s);
  }
  // A schedule swap makes the host 10x busier; with the baseline reset the
  // heavier plan is the new normal, not a gray failure.
  m.reset_baseline("host");
  for (std::int64_t s = 2; s < 6; ++s) {
    m.observe_step_time("host", s, 1e-2);
    m.end_step(s);
  }
  EXPECT_EQ(m.state("host"), HealthState::Healthy);
  EXPECT_NEAR(m.slowdown("host"), 1.0, 1e-9);
}

// The session service drives one monitor from concurrent workers. Hammer
// 32 entities from multiple threads (each thread owns its entities — the
// per-entity determinism contract) and assert no transition was lost and
// the generation counter moved once per transition.
TEST(HealthMonitor, ConcurrentFailuresLoseNoTransitions) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;  // 32 entities total
  HealthMonitor m;
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i)
      m.track("dev" + std::to_string(t) + "_" + std::to_string(i));

  const std::uint64_t gen0 = m.generation();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string name =
            "dev" + std::to_string(t) + "_" + std::to_string(i);
        // Hard fault -> Quarantined, then probation back to Recovered:
        // two transitions per entity, interleaved across threads.
        m.observe_failure(name, /*step=*/1, "injected");
        std::int64_t step = 1;
        while (m.state(name) != HealthState::Recovered) {
          step += 1;
          if (m.probe_due(name, step)) m.observe_probe(name, step, true);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto transitions = m.transitions();
  ASSERT_EQ(transitions.size(), 2u * kThreads * kPerThread);
  EXPECT_EQ(m.generation() - gen0, 2u * kThreads * kPerThread);
  int quarantines = 0;
  int recoveries = 0;
  for (const auto& tr : transitions) {
    if (tr.to == HealthState::Quarantined) quarantines += 1;
    if (tr.to == HealthState::Recovered) recoveries += 1;
  }
  EXPECT_EQ(quarantines, kThreads * kPerThread);
  EXPECT_EQ(recoveries, kThreads * kPerThread);
  for (const auto& name : m.entities())
    EXPECT_EQ(m.state(name), HealthState::Recovered);
}

// Regression: listeners fire after the monitor releases its mutex, so a
// listener may call back into the monitor — query it, or even cause further
// transitions — without self-deadlocking. (Listeners used to run under the
// lock; a re-entrant listener would hang forever.)
TEST(HealthMonitor, ListenerMayReenterTheMonitor) {
  HealthMonitor m;
  m.track("accel");
  m.track("spare");

  std::vector<Transition> seen;
  m.add_transition_listener([&m, &seen](const Transition& t) {
    seen.push_back(t);
    // Query re-entrancy: reading state from inside the listener must not
    // deadlock.
    EXPECT_NE(m.state(t.entity), HealthState::Healthy);
    // Mutating re-entrancy: the accel's quarantine fails the spare over
    // too. The nested transition is queued and delivered to this same
    // listener after the current batch, not dropped and not re-entered
    // under the lock.
    if (t.entity == "accel" && t.to == HealthState::Quarantined &&
        m.state("spare") == HealthState::Healthy)
      m.observe_failure("spare", t.step, "cascaded from accel");
  });

  m.observe_failure("accel", /*step=*/7, "injected");

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].entity, "accel");
  EXPECT_EQ(seen[0].to, HealthState::Quarantined);
  EXPECT_EQ(seen[1].entity, "spare");
  EXPECT_EQ(seen[1].to, HealthState::Quarantined);
  EXPECT_EQ(seen[1].reason, "cascaded from accel");
  EXPECT_EQ(m.state("accel"), HealthState::Quarantined);
  EXPECT_EQ(m.state("spare"), HealthState::Quarantined);
}

// Two monitors with distinct metric scopes must publish distinguishable
// series; an unscoped monitor keeps the historical global names.
TEST(HealthMonitor, MetricScopeSeparatesConcurrentMonitors) {
  auto& registry = obs::MetricsRegistry::global();
  HealthMonitor a;
  a.set_metric_scope("service.session1.");
  HealthMonitor b;
  b.set_metric_scope("service.session2.");
  a.track("accel");
  b.track("accel");

  const auto quarantines = [&registry](const std::string& scope) {
    return registry.counter(scope + "resilience.health.quarantines").value();
  };
  const auto q1 = quarantines("service.session1.");
  const auto q2 = quarantines("service.session2.");
  const auto q_global = quarantines("");

  a.observe_failure("accel", 3, "session 1 fault");
  EXPECT_EQ(quarantines("service.session1."), q1 + 1);
  EXPECT_EQ(quarantines("service.session2."), q2);
  EXPECT_EQ(quarantines(""), q_global);  // global series untouched
  b.observe_failure("accel", 5, "session 2 fault");
  EXPECT_EQ(quarantines("service.session2."), q2 + 1);

  EXPECT_EQ(registry.gauge("service.session1.resilience.health.state.accel")
                .value(),
            static_cast<double>(static_cast<int>(HealthState::Quarantined)));
  EXPECT_EQ(registry.gauge("service.session2.resilience.health.state.accel")
                .value(),
            static_cast<double>(static_cast<int>(HealthState::Quarantined)));
}

// ---------------------------------------------------------- machine degrade

TEST(MachineDegrade, ScalesKernelAndRooflineTimesConsistently) {
  const machine::Platform platform = machine::paper_platform();
  machine::KernelCost cost;
  cost.flops = 40;
  cost.bytes_streamed = 96;
  cost.bytes_gathered = 64;
  cost.bytes_written = 24;
  const std::int64_t n = 40962;
  const Real slowdown = 2.5;
  const machine::DeviceSpec slow =
      machine::degrade(platform.accelerator, slowdown);
  for (const auto opt : {machine::OptLevel::Refactored,
                         machine::OptLevel::Full}) {
    const Real t0 = machine::kernel_time(platform.accelerator, cost, n, opt);
    const Real t1 = machine::kernel_time(slow, cost, n, opt);
    EXPECT_NEAR(t1 / t0, slowdown, 1e-9) << to_string(opt);
    const Real r0 = machine::roofline_time(platform.accelerator, cost, n, opt);
    const Real r1 = machine::roofline_time(slow, cost, n, opt);
    EXPECT_NEAR(r1 / r0, slowdown, 1e-9) << to_string(opt);
  }
  // slowdown <= 1 is the identity.
  EXPECT_EQ(machine::degrade(platform.host, 1.0).freq_ghz,
            platform.host.freq_ghz);
}

TEST(MachineDegrade, DegradedPlatformOnlyTouchesRequestedDevice) {
  const machine::Platform base = machine::paper_platform();
  const machine::Platform degraded = machine::degraded_platform(base, 3.0);
  EXPECT_EQ(degraded.host.freq_ghz, base.host.freq_ghz);
  EXPECT_NEAR(degraded.accelerator.freq_ghz, base.accelerator.freq_ghz / 3.0,
              1e-12);
  EXPECT_NEAR(degraded.accelerator.region_overhead_us,
              base.accelerator.region_overhead_us * 3.0, 1e-9);
}

// ------------------------------------------------------------- ReplanEngine

struct ReplanFixture {
  // Level 4: the smallest mesh whose nameplate plan offloads work (the
  // gray-failure comparison is vacuous when everything is host-only).
  std::shared_ptr<const mesh::VoronoiMesh> mesh = mesh::get_global_mesh(4);
  sw::SwParams params;
  sw::SwModel model{*mesh, params};
  core::MeshSizes sizes{mesh->num_cells, mesh->num_edges, mesh->num_vertices};
  core::SimOptions opts{machine::paper_platform()};

  ReplanFixture() { opts.record_trace = true; }
};

TEST(ReplanEngine, AccelDeathFallsBackToVerifiedHostOnlyPlan) {
  ReplanFixture fx;
  const ReplanEngine engine(fx.sizes, fx.opts);
  DeviceAvailability dead;
  dead.accel_alive = false;

  const auto& graphs = fx.model.graphs();
  const core::DataflowGraph* all[3] = {&graphs.setup, &graphs.early,
                                       &graphs.final};
  for (const auto* graph : all) {
    const ReplanResult r = engine.replan(*graph, dead);
    // Acceptance: the swapped-in schedule passes the verifier with zero
    // errors and places nothing on the quarantined accelerator.
    EXPECT_TRUE(r.accepted) << graph->name();
    EXPECT_EQ(r.verification.errors(), 0) << graph->name();
    ASSERT_EQ(r.schedule.assignments.size(),
              static_cast<std::size_t>(graph->num_nodes()));
    for (const auto& a : r.schedule.assignments)
      EXPECT_EQ(a.side, core::DeviceSide::Host) << graph->name();

    // Acceptance: modeled per-step time within 1.25x of the CPU-only
    // schedule's modeled optimum once the MIC is gone.
    const core::SimResult cpu = engine.cpu_only_modeled(*graph, dead);
    EXPECT_LE(r.modeled.makespan, 1.25 * cpu.makespan) << graph->name();
    EXPECT_GT(r.modeled_optimum, 0.0);
    EXPECT_GE(r.modeled.makespan, r.modeled_optimum * (1 - 1e-9))
        << graph->name();
  }
}

TEST(ReplanEngine, AttributionShowsIdleAccelAfterDeath) {
  ReplanFixture fx;
  const ReplanEngine engine(fx.sizes, fx.opts);
  DeviceAvailability dead;
  dead.accel_alive = false;
  const ReplanResult r = engine.replan(fx.model.graphs().early, dead);
  ASSERT_TRUE(r.accepted);
  // The bench-harness attribution path over the degraded plan: all busy
  // time lands on the host lane, the accelerator's utilization is zero.
  const auto report = bench_harness::attribute_schedule(
      fx.model.graphs().early, r.schedule, r.modeled, fx.sizes,
      engine.degraded_options(dead), "degraded");
  bool saw_host = false;
  bool saw_accel = false;
  for (const auto& dev : report.devices) {
    if (dev.device == "host") {
      saw_host = true;
      EXPECT_GT(dev.busy_s, 0.0);
      EXPECT_GT(dev.roofline_utilization, 0.0);
    }
    if (dev.device == "accel") {
      saw_accel = true;
      EXPECT_EQ(dev.busy_s, 0.0);
      EXPECT_EQ(dev.flops, 0.0);
    }
  }
  EXPECT_TRUE(saw_host);
  EXPECT_TRUE(saw_accel);
}

TEST(ReplanEngine, GrayFailureReplanBeatsStalePlanOnDegradedPlatform) {
  ReplanFixture fx;
  const ReplanEngine engine(fx.sizes, fx.opts);
  const auto& graph = fx.model.graphs().early;

  const ReplanResult nameplate = engine.replan(graph, DeviceAvailability{});
  ASSERT_TRUE(nameplate.accepted);

  DeviceAvailability gray;
  gray.accel_slowdown = 4.0;
  const ReplanResult adapted = engine.replan(graph, gray);
  ASSERT_TRUE(adapted.accepted);
  EXPECT_EQ(adapted.verification.errors(), 0);

  // Cost the stale nameplate split on the *degraded* platform: the replan
  // that knows about the slowdown must be at least as good.
  const core::SimResult stale = core::simulate_schedule(
      graph, nameplate.schedule, fx.sizes, engine.degraded_options(gray));
  EXPECT_LE(adapted.modeled.makespan, stale.makespan * (1 + 1e-12));
}

// ------------------------------------------------------- SelfHealingHybrid

struct HybridRun {
  // Level 4 is the smallest mesh whose pattern-level split uses the
  // accelerator; smaller meshes stay host-only and leave nothing to kill.
  std::shared_ptr<const mesh::VoronoiMesh> mesh = mesh::get_global_mesh(4);
  std::shared_ptr<const sw::TestCase> tc = sw::make_test_case(2);
  sw::SwParams params;

  HybridRun() { params.dt = sw::suggested_time_step(*tc, *mesh, 0.4); }

  void reference(int steps, std::vector<Real>& h, std::vector<Real>& u) const {
    sw::SwModel ref(*mesh, params);
    sw::apply_initial_conditions(*tc, *mesh, ref.fields());
    ref.initialize();
    ref.run(steps);
    const auto h_ref = ref.fields().get(sw::FieldId::H);
    const auto u_ref = ref.fields().get(sw::FieldId::U);
    h.assign(h_ref.begin(), h_ref.end());
    u.assign(u_ref.begin(), u_ref.end());
  }
};

TEST(SelfHealingHybrid, InitialPlanIsHybridAndVerified) {
  HybridRun run;
  SelfHealingHybrid sut(*run.mesh, run.params, {});
  sw::apply_initial_conditions(*run.tc, *run.mesh, sut.model().fields());
  sut.initialize();
  EXPECT_EQ(sut.replans(), 0);
  EXPECT_TRUE(sut.availability().accel_alive);
  for (const ReplanResult* plan :
       {&sut.setup_plan(), &sut.early_plan(), &sut.final_plan()}) {
    EXPECT_TRUE(plan->accepted);
    EXPECT_EQ(plan->verification.errors(), 0);
  }
  // The nameplate plan actually uses the accelerator.
  bool uses_accel = false;
  for (const auto& a : sut.early_plan().schedule.assignments)
    uses_accel = uses_accel || a.side != core::DeviceSide::Host;
  EXPECT_TRUE(uses_accel);
}

TEST(SelfHealingHybrid, DeviceDeathQuarantinesReplansAndStaysBitwise) {
  HybridRun run;
  const int steps = 10;
  std::vector<Real> h_ref, u_ref;
  run.reference(steps, h_ref, u_ref);

  // The link dies for good on the first transfer of step 2 (3 startup
  // events + 4 per step).
  FaultInjector injector(11);
  FaultSpec death;
  death.kind = FaultKind::TransferFail;
  death.at_event = 3 + 4 * 2;
  death.repeat = 1 << 20;
  injector.add(death);

  SelfHealingHybrid::Options opts;
  opts.injector = &injector;
  SelfHealingHybrid sut(*run.mesh, run.params, opts);
  sw::apply_initial_conditions(*run.tc, *run.mesh, sut.model().fields());
  sut.initialize();
  sut.run(steps);

  EXPECT_EQ(sut.monitor().state("accel"), HealthState::Quarantined);
  EXPECT_GE(sut.replans(), 1);
  EXPECT_FALSE(sut.availability().accel_alive);
  // The degraded plan is host-only and still verifier-clean.
  for (const ReplanResult* plan :
       {&sut.setup_plan(), &sut.early_plan(), &sut.final_plan()}) {
    EXPECT_TRUE(plan->accepted);
    EXPECT_EQ(plan->verification.errors(), 0);
    for (const auto& a : plan->schedule.assignments)
      EXPECT_EQ(a.side, core::DeviceSide::Host);
  }

  // Acceptance: per-step modeled time of the healed run within 1.25x of
  // the CPU-only schedules' modeled makespans.
  DeviceAvailability dead;
  dead.accel_alive = false;
  const auto& graphs = sut.model().graphs();
  const Real cpu_step =
      sut.engine().cpu_only_modeled(graphs.setup, dead).makespan +
      3 * sut.engine().cpu_only_modeled(graphs.early, dead).makespan +
      sut.engine().cpu_only_modeled(graphs.final, dead).makespan;
  EXPECT_LE(sut.modeled_step_seconds(), 1.25 * cpu_step);

  // Bitwise convergence to the fault-free solution.
  const auto h = sut.model().fields().get(sw::FieldId::H);
  const auto u = sut.model().fields().get(sw::FieldId::U);
  ASSERT_EQ(h.size(), h_ref.size());
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_EQ(h[i], h_ref[i]) << i;
  for (std::size_t i = 0; i < u.size(); ++i) EXPECT_EQ(u[i], u_ref[i]) << i;
}

TEST(SelfHealingHybrid, TransientDeathRecoversThroughProbation) {
  HybridRun run;
  const int steps = 14;
  std::vector<Real> h_ref, u_ref;
  run.reference(steps, h_ref, u_ref);

  // A transient outage: the fault budget (8 fires) is consumed by the
  // failing step-2 transfer (4 attempts) and the first probation probe
  // (4 attempts); the next probe finds the link healthy again.
  FaultInjector injector(5);
  FaultSpec outage;
  outage.kind = FaultKind::TransferFail;
  outage.at_event = 3 + 4 * 2;
  outage.repeat = 8;
  injector.add(outage);

  SelfHealingHybrid::Options opts;
  opts.injector = &injector;
  SelfHealingHybrid sut(*run.mesh, run.params, opts);
  sw::apply_initial_conditions(*run.tc, *run.mesh, sut.model().fields());
  sut.initialize();
  sut.run(steps);

  bool quarantined = false;
  bool recovered = false;
  for (const auto& t : sut.monitor().transitions()) {
    quarantined = quarantined || t.to == HealthState::Quarantined;
    recovered = recovered || t.to == HealthState::Recovered;
  }
  EXPECT_TRUE(quarantined);
  EXPECT_TRUE(recovered);
  // The loop closed all the way: quarantine swap + recovery swap, the
  // accelerator is back in the plan, and the monitor settled on Healthy.
  EXPECT_GE(sut.replans(), 2);
  EXPECT_TRUE(sut.availability().accel_alive);
  EXPECT_EQ(sut.monitor().state("accel"), HealthState::Healthy);
  bool uses_accel = false;
  for (const auto& a : sut.early_plan().schedule.assignments)
    uses_accel = uses_accel || a.side != core::DeviceSide::Host;
  EXPECT_TRUE(uses_accel);

  const auto h = sut.model().fields().get(sw::FieldId::H);
  const auto u = sut.model().fields().get(sw::FieldId::U);
  ASSERT_EQ(h.size(), h_ref.size());
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_EQ(h[i], h_ref[i]) << i;
  for (std::size_t i = 0; i < u.size(); ++i) EXPECT_EQ(u[i], u_ref[i]) << i;
}

// ---------------------------------------------------------- chaos campaigns

TEST(Chaos, DeviceDeathCampaignPasses) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ChaosOptions opts;
    opts.scenario = ChaosScenario::DeviceDeath;
    opts.seed = seed;
    const ChaosReport report = run_chaos(opts);
    EXPECT_TRUE(report.passed()) << report.summary;
    EXPECT_TRUE(report.quarantined) << report.summary;
    EXPECT_GE(report.replans, 1) << report.summary;
  }
}

TEST(Chaos, GrayFailureCampaignPasses) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ChaosOptions opts;
    opts.scenario = ChaosScenario::GrayFailure;
    opts.seed = seed;
    const ChaosReport report = run_chaos(opts);
    EXPECT_TRUE(report.passed()) << report.summary;
    EXPECT_TRUE(report.detected) << report.summary;
  }
}

TEST(Chaos, TransferCorruptionBurstCampaignPasses) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ChaosOptions opts;
    opts.scenario = ChaosScenario::TransferCorruptionBurst;
    opts.seed = seed;
    const ChaosReport report = run_chaos(opts);
    EXPECT_TRUE(report.passed()) << report.summary;
    // Retries stayed within the budget: suspicion, not quarantine.
    EXPECT_FALSE(report.quarantined) << report.summary;
  }
}

TEST(Chaos, RankStallCampaignShrinksAndPasses) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ChaosOptions opts;
    opts.scenario = ChaosScenario::RankStall;
    opts.seed = seed;
    const ChaosReport report = run_chaos(opts);
    EXPECT_TRUE(report.passed()) << report.summary;
    EXPECT_EQ(report.final_ranks, opts.ranks - 1) << report.summary;
  }
}

TEST(Chaos, ScenarioNamesRoundTrip) {
  for (const ChaosScenario s :
       {ChaosScenario::DeviceDeath, ChaosScenario::GrayFailure,
        ChaosScenario::TransferCorruptionBurst, ChaosScenario::RankStall})
    EXPECT_EQ(parse_scenario(to_string(s)), s);
  EXPECT_THROW(parse_scenario("meteor-strike"), Error);
}

// -------------------------------------------------------- distributed shrink

TEST(DistributedShrink, MidRunShrinkContinuesBitwise) {
  const auto mesh = mesh::get_global_mesh(2);
  const auto tc = sw::make_test_case(2);
  sw::SwParams params;
  params.dt = sw::suggested_time_step(*tc, *mesh, 0.4);
  const int steps_before = 3;
  const int steps_after = 2;

  comm::DistributedSw ref(*mesh, 4, params);
  ref.apply_test_case(*tc);
  ref.initialize();
  ref.run(steps_before + steps_after);

  comm::DistributedSw sut(*mesh, 4, params);
  sut.apply_test_case(*tc);
  sut.initialize();
  sut.run(steps_before);
  sut.shrink_to(2);
  EXPECT_EQ(sut.num_ranks(), 2);
  sut.run(steps_after);

  EXPECT_EQ(sut.gather_global(sw::FieldId::H), ref.gather_global(sw::FieldId::H));
  EXPECT_EQ(sut.gather_global(sw::FieldId::U), ref.gather_global(sw::FieldId::U));
}

// --------------------------------------------------------- metrics & traces

TEST(Observability, CampaignPublishesHealthMetricsAndTraceInstants) {
  auto& recorder = obs::TraceRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);

  ChaosOptions opts;
  opts.scenario = ChaosScenario::DeviceDeath;
  opts.seed = 1;
  const ChaosReport report = run_chaos(opts);
  recorder.set_enabled(false);
  ASSERT_TRUE(report.passed()) << report.summary;

  bool saw_quarantine = false;
  bool saw_probe = false;
  bool saw_replan = false;
  for (const auto& event : recorder.snapshot()) {
    saw_quarantine = saw_quarantine || event.name == "health:quarantine";
    saw_probe = saw_probe || event.name == "health:probe";
    saw_replan = saw_replan || event.name == "health:replan";
  }
  EXPECT_TRUE(saw_quarantine);
  EXPECT_TRUE(saw_probe);
  EXPECT_TRUE(saw_replan);

  auto& registry = obs::MetricsRegistry::global();
  EXPECT_GE(registry.counter("resilience.health.transitions").value(), 1u);
  EXPECT_GE(registry.counter("resilience.health.quarantines").value(), 1u);
  EXPECT_GE(registry.counter("resilience.health.probes").value(), 1u);
  EXPECT_GE(registry.counter("resilience.health.replans").value(), 1u);
  EXPECT_EQ(static_cast<int>(
                registry.gauge("resilience.health.state.accel").value()),
            static_cast<int>(HealthState::Quarantined));
}

}  // namespace
}  // namespace mpas::resilience::health
