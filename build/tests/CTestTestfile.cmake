# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_trimesh[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_trisk[1]_include.cmake")
include("/root/repo/build/tests/test_mesh_io[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_sw_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_sw_model[1]_include.cmake")
include("/root/repo/build/tests/test_dataflow[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid_model[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_mesh_properties[1]_include.cmake")
include("/root/repo/build/tests/test_operator_convergence[1]_include.cmake")
include("/root/repo/build/tests/test_sw_properties[1]_include.cmake")
include("/root/repo/build/tests/test_schedule_properties[1]_include.cmake")
include("/root/repo/build/tests/test_table1_consistency[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_output[1]_include.cmake")
include("/root/repo/build/tests/test_tracer[1]_include.cmake")
