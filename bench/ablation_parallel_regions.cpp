// Ablation (Section IV.B): one OpenMP parallel region per *kernel* vs one
// per *pattern*. The paper keeps one region per kernel and removes the
// implicit synchronizations because a fresh 240-thread region per pattern
// costs too much. We quantify that with the machine model's region
// overhead: per-step time with N_regions = #patterns vs #kernels vs the
// fused minimum, across mesh sizes (the overhead matters most on small
// per-rank workloads — exactly the strong-scaling tail of Figure 8a).
#include <cstdio>
#include <set>

#include "bench_common.hpp"

using namespace mpas;

namespace {

/// Count pattern nodes and distinct kernels per step (setup + 3*early +
/// final).
struct RegionCounts {
  int patterns = 0;
  int kernels = 0;
};

RegionCounts count_regions(const sw::SwGraphs& graphs) {
  RegionCounts rc;
  auto add = [&](const core::DataflowGraph& g, int repeats) {
    std::set<core::KernelGroup> kernels;
    for (const auto& n : g.nodes()) kernels.insert(n.kernel);
    rc.patterns += repeats * g.num_nodes();
    rc.kernels += repeats * static_cast<int>(kernels.size());
  };
  add(graphs.setup, 1);
  add(graphs.early, 3);
  add(graphs.final, 1);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bench::bench_init(argc, argv, "ablation_parallel_regions");
  std::printf(
      "== Ablation: parallel-region granularity (Section IV.B) ==\n\n");

  const sw::SwGraphs graphs = sw::build_sw_graphs(nullptr, false);
  const RegionCounts rc = count_regions(graphs);
  const machine::DeviceSpec phi = machine::xeon_phi_5110p();
  const Real region_cost = phi.region_overhead_us * 1e-6;

  bench::add_info("pattern_regions_per_step", static_cast<Real>(rc.patterns),
                  "count");
  bench::add_info("kernel_regions_per_step", static_cast<Real>(rc.kernels),
                  "count");
  std::printf("pattern nodes per step: %d, kernel functions per step: %d\n",
              rc.patterns, rc.kernels);
  std::printf("Xeon Phi fork/join + barrier cost: %.0f us\n\n",
              phi.region_overhead_us);

  Table t({"cells", "compute time/step (s)", "region overhead: per-pattern",
           "per-kernel", "overhead share per-pattern", "per-kernel"});
  for (std::int64_t cells : {2562LL, 40962LL, 655362LL, 2621442LL}) {
    const auto sizes = core::MeshSizes::icosahedral(cells);
    // Pure compute (subtract the per-node overhead the simulator charges).
    const Real with_regions =
        bench::strategy_step_time(graphs, bench::Strategy::AccelOnly, sizes);
    const Real compute = with_regions - rc.patterns * region_cost;
    const Real per_pattern = rc.patterns * region_cost;
    const Real per_kernel = rc.kernels * region_cost;
    bench::add_modeled(std::to_string(cells) + "c_overhead_share_per_pattern",
                       per_pattern / (compute + per_pattern), "ratio");
    bench::add_modeled(std::to_string(cells) + "c_overhead_share_per_kernel",
                       per_kernel / (compute + per_kernel), "ratio");
    t.add_row({std::to_string(cells), Table::num(compute, 4),
               Table::num(per_pattern, 3), Table::num(per_kernel, 3),
               Table::fixed(per_pattern / (compute + per_pattern) * 100, 1) + "%",
               Table::fixed(per_kernel / (compute + per_kernel) * 100, 1) + "%"});
  }
  bench::emit(t, "ablation_parallel_regions");
  std::printf(
      "Reading: per-pattern regions are negligible on the big meshes but\n"
      "dominate small per-rank workloads — why the paper fuses regions per\n"
      "kernel and why Figure 8(a) flattens at high process counts.\n");
  return 0;
}
