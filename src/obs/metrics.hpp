// Process-wide metrics: named counters, gauges, and fixed-bucket log-scale
// histograms, rendered through util/table so a metrics report reads like
// every other table in the repo.
//
// Counters/gauges are registered once (pointer-stable; a hot path resolves
// its Counter* in a constructor and bumps an atomic per event — no map
// lookup per call, mirroring TimingStats::SectionHandle). Histograms use 64
// base-2 buckets so recording is an ilogb + one atomic increment, and two
// histograms are always mergeable bucket-by-bucket.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace mpas::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    // fetch_add on atomic<double> needs C++20 + lock-free support; a CAS
    // loop is portable and these are low-rate bookkeeping sites.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Log-scale (base-2) histogram with a fixed bucket layout:
/// bucket i (1 <= i < kBuckets-1) covers [2^(i-1-kZeroOffset), 2^(i-kZeroOffset));
/// bucket 0 collects v <= 0 and underflow, the last bucket overflow.
/// With kZeroOffset = 30 the resolvable range is ~[2^-30, 2^32) — nanoseconds
/// to gigabytes in one layout.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kZeroOffset = 30;

  /// Bucket index a value lands in (pure function — tested directly).
  [[nodiscard]] static int bucket_index(double value);
  /// Inclusive lower edge of bucket i (bucket 0 reports 0).
  [[nodiscard]] static double bucket_lower_edge(int index);

  void record(double value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Relaxed CAS sum: histograms are statistics, not synchronization.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  [[nodiscard]] std::uint64_t bucket_count(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  /// Smallest bucket lower edge q of the data's quantile (0 <= q <= 1).
  [[nodiscard]] double quantile_lower_bound(double q) const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry the runtime layers publish into.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; returned pointers are stable for the registry's life.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// One row per metric: name, kind, value/count, mean, p50/p99 bounds.
  [[nodiscard]] Table to_table() const;
  [[nodiscard]] std::string to_string() const;

  /// Zero every metric (registrations survive, pointers stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace mpas::obs
