#include "bench_harness/compare.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>

namespace mpas::bench_harness {

namespace {

bool in_range(double v, double lo, double hi) {
  return std::isfinite(v) && v >= lo && v <= hi;
}

void check_attribution_structure(const BenchReport& report,
                                 CompareResult& result) {
  for (const AttributionReport& a : report.attributions()) {
    auto fail = [&](const std::string& what, double value) {
      CompareIssue issue;
      issue.severity = CompareIssue::Severity::Structural;
      issue.suite = report.suite();
      issue.series = "attribution:" + a.track_name;
      issue.current = value;
      issue.message = what;
      result.issues.push_back(std::move(issue));
    };
    // The imbalance ratio is max/mean: >= 1 by construction.
    if (!in_range(a.imbalance, 1.0 - 1e-9, 1e9))
      fail("imbalance ratio out of range", a.imbalance);
    if (!in_range(a.overlap_efficiency, 0.0, 1.0 + 1e-9))
      fail("overlap efficiency outside [0, 1]", a.overlap_efficiency);
    if (a.transfer_exposed_us < -1e-9 ||
        a.transfer_exposed_us > a.transfer_total_us + 1e-9)
      fail("exposed transfer time exceeds total", a.transfer_exposed_us);
    for (const DeviceUtilization& d : a.devices)
      // Modeled busy time always covers the roofline bound plus overheads,
      // so utilization beyond ~1 means the attribution math broke.
      if (!in_range(d.roofline_utilization, 0.0, 1.05))
        fail("roofline utilization outside [0, 1] for " + d.device,
             d.roofline_utilization);
  }
}

}  // namespace

const char* to_string(CompareIssue::Severity s) {
  switch (s) {
    case CompareIssue::Severity::Regression: return "REGRESSION";
    case CompareIssue::Severity::Structural: return "STRUCTURAL";
    case CompareIssue::Severity::Improvement: return "improvement";
    case CompareIssue::Severity::Note: return "note";
  }
  return "?";
}

int CompareResult::regressions() const {
  return static_cast<int>(
      std::count_if(issues.begin(), issues.end(), [](const CompareIssue& i) {
        return i.severity == CompareIssue::Severity::Regression;
      }));
}

int CompareResult::structural_failures() const {
  return static_cast<int>(
      std::count_if(issues.begin(), issues.end(), [](const CompareIssue& i) {
        return i.severity == CompareIssue::Severity::Structural;
      }));
}

Table CompareResult::to_table() const {
  Table t({"severity", "suite", "series", "baseline", "current", "ratio",
           "detail"});
  for (const CompareIssue& i : issues)
    t.add_row({to_string(i.severity), i.suite, i.series,
               Table::num(i.baseline), Table::num(i.current),
               Table::fixed(i.ratio, 3), i.message});
  return t;
}

void CompareResult::merge(CompareResult other) {
  issues.insert(issues.end(),
                std::make_move_iterator(other.issues.begin()),
                std::make_move_iterator(other.issues.end()));
}

CompareResult compare_reports(const BenchReport& baseline,
                              const BenchReport& current,
                              const CompareOptions& options) {
  CompareResult result;
  auto add = [&](CompareIssue::Severity severity, const std::string& series,
                 double base, double cur, const std::string& message) {
    CompareIssue issue;
    issue.severity = severity;
    issue.suite = baseline.suite();
    issue.series = series;
    issue.baseline = base;
    issue.current = cur;
    issue.ratio = std::abs(base) > 0 ? cur / base : 0.0;
    issue.message = message;
    result.issues.push_back(std::move(issue));
  };

  if (baseline.suite() != current.suite()) {
    add(CompareIssue::Severity::Structural, "<suite>", 0, 0,
        "suite name mismatch: '" + baseline.suite() + "' vs '" +
            current.suite() + "'");
    return result;
  }

  // Different compiler/build/preset: modeled values are not expected to
  // match tightly, so everything falls back to the wide measured band.
  const bool comparable =
      baseline.environment().comparable(current.environment());
  if (!comparable)
    add(CompareIssue::Severity::Note, "<environment>", 0, 0,
        "environments differ (" + baseline.environment().compiler + "/" +
            baseline.environment().build_type + " vs " +
            current.environment().compiler + "/" +
            current.environment().build_type +
            "); using the wide tolerance band for all series");

  for (const MetricSeries& base : baseline.series()) {
    const MetricSeries* cur = current.find_series(base.name);
    if (cur == nullptr) {
      if (options.require_same_series)
        add(CompareIssue::Severity::Structural, base.name, base.stats.median,
            0, "series missing from current report");
      continue;
    }
    if (base.direction == Direction::Informational) continue;
    if (cur->stats.count == 0) {
      add(CompareIssue::Severity::Structural, base.name, base.stats.median, 0,
          "series has no samples");
      continue;
    }

    const double rel = (base.kind == SeriesKind::Modeled && comparable)
                           ? options.modeled_rel_tol
                           : options.measured_rel_tol;
    const double b = base.stats.median;
    const double c = cur->stats.median;
    const double slack = std::abs(b) * rel + options.abs_tol;
    const bool worse = base.direction == Direction::LowerIsBetter
                           ? c > b + slack
                           : c < b - slack;
    const bool better = base.direction == Direction::LowerIsBetter
                            ? c < b - slack
                            : c > b + slack;
    if (worse)
      add(CompareIssue::Severity::Regression, base.name, b, c,
          "median moved beyond the ±" +
              Table::fixed(rel * 100, 0) + "% " + to_string(base.kind) +
              " band (" + base.unit + ")");
    else if (better)
      add(CompareIssue::Severity::Improvement, base.name, b, c,
          "median improved beyond the tolerance band (" + base.unit + ")");
  }

  for (const MetricSeries& s : current.series())
    if (baseline.find_series(s.name) == nullptr)
      add(CompareIssue::Severity::Note, s.name, 0, s.stats.median,
          "series added since baseline");

  if (!baseline.attributions().empty() && current.attributions().empty())
    add(CompareIssue::Severity::Structural, "<attribution>", 0, 0,
        "baseline carries attribution blocks but current has none");
  check_attribution_structure(current, result);
  return result;
}

CompareResult compare_dirs(const std::string& baseline_dir,
                           const std::string& current_dir,
                           const CompareOptions& options) {
  namespace fs = std::filesystem;
  CompareResult result;
  auto structural = [&](const std::string& suite, const std::string& msg) {
    CompareIssue issue;
    issue.severity = CompareIssue::Severity::Structural;
    issue.suite = suite;
    issue.series = "<file>";
    issue.message = msg;
    result.issues.push_back(std::move(issue));
  };

  if (!fs::is_directory(baseline_dir)) {
    structural("<baseline>", "not a directory: " + baseline_dir);
    return result;
  }
  // Scan the *union* of both directories: a suite whose baseline JSON is
  // missing (typically a suite added without refreshing the baselines) must
  // be reported by name, not silently skipped — and the remaining suites
  // must still be checked so one missing file doesn't mask a regression.
  auto list_reports = [&](const std::string& dir,
                          std::vector<std::string>& names) {
    if (!fs::is_directory(dir)) return;
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          name.size() > 5 + 5 &&  // "BENCH_" + ".json"
          name.substr(name.size() - 5) == ".json")
        names.push_back(name);
    }
  };
  std::vector<std::string> names;
  list_reports(baseline_dir, names);
  if (names.empty())
    structural("<baseline>", "no BENCH_*.json files in " + baseline_dir);
  list_reports(current_dir, names);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());

  for (const std::string& name : names) {
    const std::string base_path = baseline_dir + "/" + name;
    const std::string cur_path = current_dir + "/" + name;
    if (!fs::exists(base_path)) {
      structural(name, "baseline report missing from " + baseline_dir);
      continue;
    }
    if (!fs::exists(cur_path)) {
      structural(name, "report missing from " + current_dir);
      continue;
    }
    try {
      const BenchReport base = BenchReport::read_file(base_path);
      const BenchReport cur = BenchReport::read_file(cur_path);
      result.merge(compare_reports(base, cur, options));
    } catch (const std::exception& e) {
      structural(name, std::string("unreadable report: ") + e.what());
    }
  }
  return result;
}

}  // namespace mpas::bench_harness
