file(REMOVE_RECURSE
  "CMakeFiles/hybrid_tuning.dir/hybrid_tuning.cpp.o"
  "CMakeFiles/hybrid_tuning.dir/hybrid_tuning.cpp.o.d"
  "hybrid_tuning"
  "hybrid_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
