// Roofline-style machine model of the paper's evaluation platform
// (Table II): dual Intel Xeon E5-2680 v2 hosts with Intel Xeon Phi 5110P
// coprocessors, connected by PCIe, across nodes by 56 Gb FDR InfiniBand.
//
// WHY A MODEL: no Xeon Phi exists in this environment (see DESIGN.md,
// substitution table). All kernels execute functionally on the build host,
// so the *numerics* of every experiment are real; the execution *time*
// reported by the benches is produced by this model, driven by per-kernel
// operation/byte counts measured from the real mesh and by the real
// schedule structure (device assignment, transfers, halo exchanges). The
// paper's performance claims are about loop structure and schedule
// structure, both of which are preserved exactly.
//
// The model: for a kernel over N entities with per-entity costs
// (flops, streamed bytes, gathered bytes, written bytes),
//
//   t = max(flop_time, memory_time) + parallel_region_overhead
//
// where flop_time uses scalar or SIMD issue rates (SIMD efficiency is low
// for the gather-heavy patterns: the paper measured only ~20% gain), and
// memory_time charges streamed bytes at the STREAM bandwidth, gathered
// bytes at a derated bandwidth (cache-line waste + latency exposure), and
// written bytes twice unless streaming (non-temporal) stores are enabled
// (read-for-ownership). The *irregular* (scatter/atomic) loop variant
// additionally serializes writes, which is what makes plain OpenMP perform
// so poorly before the regularity-aware refactoring (Fig. 6).
#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace mpas::machine {

/// Hardware description of one device (Table II row).
struct DeviceSpec {
  std::string name;
  int cores = 1;
  int threads_per_core = 1;
  Real freq_ghz = 1.0;
  int simd_width_dp = 1;   // doubles per vector
  bool fma = true;
  Real stream_bw_gbs = 10.0;        // achievable full-chip STREAM bandwidth
  Real single_core_bw_gbs = 5.0;    // streaming bandwidth one core can draw
  Real scalar_flops_per_cycle = 1.0;  // sustained scalar DP issue rate
  Real region_overhead_us = 3.0;    // fork/join + implicit barrier cost
  Real gather_efficiency = 0.25;    // chip-level indirect-access derating
  Real serial_gather_bw_gbs = 1.0;  // one thread chasing indirect loads:
                                    // (cache line / miss latency) x MLP.
                                    // Tiny on the in-order Phi, the single
                                    // most important constant behind the
                                    // Fig. 6 ladder.
  Real simd_gather_speedup = 1.2;   // SIMD gain on gather-heavy loops
  Real streaming_gather_boost = 1.0;  // non-temporal stores free line-fill
                                      // buffers for gathers (KNC only)
  Real atomic_ns = 20.0;            // contended atomic update cost

  /// Peak double-precision Gflop/s of the full chip (Table II line).
  [[nodiscard]] Real peak_gflops() const {
    return cores * freq_ghz * simd_width_dp * (fma ? 2.0 : 1.0);
  }

  /// Cores left for compute. The paper leaves one MIC core for the offload
  /// daemon (Section IV.B); hosts use all cores.
  int reserved_cores = 0;
  [[nodiscard]] int compute_cores() const { return cores - reserved_cores; }
};

/// Optimization states of Figure 6, cumulative left to right.
enum class OptLevel : int {
  SerialBaseline = 0,  // one core, scalar, original irregular loops
  OpenMP = 1,          // all threads, still irregular (atomic) loops
  Refactored = 2,      // + regularity-aware gather loops (Alg. 3)
  Simd = 3,            // + manual SIMD with the label matrix (Alg. 4)
  Streaming = 4,       // + non-temporal (streaming) stores
  Full = 5,            // + prefetch, 2MB pages, loop fusion ("Others")
};

const char* to_string(OptLevel level);

/// Per-entity cost signature of one computation pattern.
struct KernelCost {
  Real flops = 0;
  Real bytes_streamed = 0;  // contiguous reads (own-entity arrays)
  Real bytes_gathered = 0;  // indirect reads through connectivity
  Real bytes_written = 0;   // output arrays
  bool scatter_writes = false;  // true for the original irregular variants

  KernelCost& operator+=(const KernelCost& o) {
    flops += o.flops;
    bytes_streamed += o.bytes_streamed;
    bytes_gathered += o.bytes_gathered;
    bytes_written += o.bytes_written;
    scatter_writes = scatter_writes || o.scatter_writes;
    return *this;
  }
};

/// Time (seconds) for one kernel of per-entity cost `cost` over `entities`
/// entities on `dev`, run with `threads` hardware threads at optimization
/// state `opt`. `threads <= 0` means the device's full complement.
Real kernel_time(const DeviceSpec& dev, const KernelCost& cost,
                 std::int64_t entities, OptLevel opt, int threads = -1);

/// Lower bound on kernel_time: the classic roofline max(flop time at the
/// chip's peak, memory time at STREAM bandwidth) for the traffic the model
/// says the kernel moves at `opt` (loop fusion at OptLevel::Full removes
/// streamed/written re-reads). No per-region overhead, gather derating, or
/// write amplification, so kernel_time / roofline_time >= 1 always.
Real roofline_time(const DeviceSpec& dev, const KernelCost& cost,
                   std::int64_t entities, OptLevel opt);

/// Host <-> accelerator link (PCIe gen2 x16 for the 5110P).
struct TransferLink {
  Real bandwidth_gbs = 6.0;
  Real latency_us = 10.0;

  [[nodiscard]] Real time(std::int64_t bytes) const {
    return latency_us * 1e-6 + static_cast<Real>(bytes) / (bandwidth_gbs * 1e9);
  }
};

/// Inter-node network (56 Gb FDR InfiniBand).
struct Network {
  Real bandwidth_gbs = 6.8;
  Real latency_us = 1.5;

  [[nodiscard]] Real message_time(std::int64_t bytes) const {
    return latency_us * 1e-6 + static_cast<Real>(bytes) / (bandwidth_gbs * 1e9);
  }
};

/// The full platform of Table II: one MPI process = one 10-core CPU plus
/// one Xeon Phi, nodes connected by FDR InfiniBand.
struct Platform {
  DeviceSpec host;
  DeviceSpec accelerator;
  TransferLink link;
  Network network;
};

/// Table II presets.
DeviceSpec xeon_e5_2680v2();
DeviceSpec xeon_phi_5110p();
Platform paper_platform();

/// A gray-failed copy of `dev`, uniformly `slowdown`x slower: issue rates
/// and bandwidths divided, per-event overheads multiplied. slowdown == 1
/// returns the device unchanged. The degraded-machine preset the
/// self-healing replanner feeds to the schedulers so a limping device is
/// costed at its *observed* speed, not its nameplate.
DeviceSpec degrade(const DeviceSpec& dev, Real slowdown);

/// The paper platform with independently derated host/accelerator — the
/// schedule_sim preset for degraded-mode what-if planning.
Platform degraded_platform(const Platform& base, Real accel_slowdown,
                           Real host_slowdown = 1.0);

}  // namespace mpas::machine
