// mpas_reconstruct: rebuild the 3-D velocity vector at cell centers from
// edge-normal components (Perot's formula — first-order exact for uniform
// fields), then rotate to zonal/meridional components. Also the per-entity
// cost signatures for the machine model.
#include "sw/kernels.hpp"

namespace mpas::sw {

void reconstruct_vector(const SwContext& ctx, FieldId u_in, Index begin,
                        Index end, LoopVariant variant) {
  const auto& m = ctx.mesh;
  const auto u = ctx.fields.get(u_in);
  auto rx = ctx.fields.get(FieldId::ReconX);
  auto ry = ctx.fields.get(FieldId::ReconY);
  auto rz = ctx.fields.get(FieldId::ReconZ);

  if (variant == LoopVariant::Irregular) {
    // Edge-order scatter form of the same sum.
    for (Index c = 0; c < m.num_cells; ++c) rx[c] = ry[c] = rz[c] = 0;
    for (Index e = 0; e < m.num_edges; ++e) {
      const Real flux = u[e] * m.dv_edge[e] * m.sphere_radius;
      for (int k = 0; k < 2; ++k) {
        const Index c = m.cells_on_edge(e, k);
        const Real sign = k == 0 ? 1.0 : -1.0;  // outward from cell k
        const Vec3 arm = m.x_edge[e] - m.x_cell[c];
        rx[c] += sign * flux * arm.x;
        ry[c] += sign * flux * arm.y;
        rz[c] += sign * flux * arm.z;
      }
    }
    for (Index c = 0; c < m.num_cells; ++c) {
      rx[c] /= m.area_cell[c];
      ry[c] /= m.area_cell[c];
      rz[c] /= m.area_cell[c];
    }
    return;
  }

  // Gather form (Refactored and BranchFree coincide: the sign already
  // comes from the label matrix).
  for (Index c = begin; c < end; ++c) {
    Vec3 acc{0, 0, 0};
    for (Index j = 0; j < m.n_edges_on_cell[c]; ++j) {
      const Index e = m.edges_on_cell(c, j);
      const Real flux = m.edge_sign_on_cell(c, j) * u[e] * m.dv_edge[e] *
                        m.sphere_radius;
      acc += (m.x_edge[e] - m.x_cell[c]) * flux;
    }
    rx[c] = acc.x / m.area_cell[c];
    ry[c] = acc.y / m.area_cell[c];
    rz[c] = acc.z / m.area_cell[c];
  }
}

void reconstruct_horizontal(const SwContext& ctx, Index begin, Index end) {
  const auto& m = ctx.mesh;
  const auto rx = ctx.fields.get(FieldId::ReconX);
  const auto ry = ctx.fields.get(FieldId::ReconY);
  const auto rz = ctx.fields.get(FieldId::ReconZ);
  auto zonal = ctx.fields.get(FieldId::ReconZonal);
  auto meridional = ctx.fields.get(FieldId::ReconMeridional);
  for (Index c = begin; c < end; ++c) {
    const Vec3 vec{rx[c], ry[c], rz[c]};
    zonal[c] = vec.dot(sphere::east_at(m.x_cell[c]));
    meridional[c] = vec.dot(sphere::north_at(m.x_cell[c]));
  }
}

// ---- cost signatures --------------------------------------------------------
// Per-entity flops and bytes, counted from the loop bodies with mean degree
// 6 (cells) and 10 (edgesOnEdge). "Gathered" bytes are reads through a
// connectivity indirection; "streamed" bytes are the entity's own rows
// (connectivity + metric arrays read contiguously in entity order).
namespace cost {

using machine::KernelCost;

KernelCost h_edge() {
  return {.flops = 3,
          .bytes_streamed = 16,   // cells_on_edge row
          .bytes_gathered = 16,   // h at both cells
          .bytes_written = 8};
}

KernelCost ke(LoopVariant v) {
  KernelCost c{.flops = 6 * 5 + 1,
               .bytes_streamed = 6 * 4 + 16,  // edgesOnCell row, area
               .bytes_gathered = 6 * 24,      // u, dc, dv per edge
               .bytes_written = 8};
  if (v == LoopVariant::Irregular) c.scatter_writes = true;
  return c;
}

KernelCost vorticity(LoopVariant v) {
  KernelCost c{.flops = 3 * 3 + 1,
               .bytes_streamed = 3 * 12 + 16,  // edgesOnVertex + signs, area
               .bytes_gathered = 3 * 16,       // u, dc
               .bytes_written = 8};
  if (v == LoopVariant::Irregular) c.scatter_writes = true;
  return c;
}

KernelCost divergence(LoopVariant v) {
  KernelCost c{.flops = 6 * 3 + 1,
               .bytes_streamed = 6 * 12 + 16,
               .bytes_gathered = 6 * 16,  // u, dv
               .bytes_written = 8};
  if (v == LoopVariant::Irregular) c.scatter_writes = true;
  return c;
}

KernelCost v_tangent() {
  return {.flops = 10 * 2,
          .bytes_streamed = 10 * 12 + 8,  // edgesOnEdge ids + weights
          .bytes_gathered = 10 * 8,       // u at edgesOnEdge
          .bytes_written = 8};
}

KernelCost h_pv_vertex() {
  return {.flops = 3 * 2 + 4,
          .bytes_streamed = 3 * 12 + 24,  // cellsOnVertex + kites, f, area
          .bytes_gathered = 3 * 8 + 8,    // h at cells, vorticity
          .bytes_written = 16};
}

KernelCost pv_cell() {
  return {.flops = 6 * 2 + 1,
          .bytes_streamed = 6 * 12 + 16,
          .bytes_gathered = 6 * 8,
          .bytes_written = 8};
}

KernelCost pv_edge() {
  return {.flops = 14,
          .bytes_streamed = 16 + 16 + 24,  // endpoint ids, dv/dc, own u,v
          .bytes_gathered = 2 * 8 + 2 * 8, // pv_vertex, pv_cell
          .bytes_written = 8};
}

KernelCost tend_h(LoopVariant v) {
  KernelCost c{.flops = 6 * 4 + 1,
               .bytes_streamed = 6 * 12 + 16,
               .bytes_gathered = 6 * 24,  // u, h_edge, dv
               .bytes_written = 8};
  if (v == LoopVariant::Irregular) c.scatter_writes = true;
  return c;
}

KernelCost tend_u() {
  return {.flops = 10 * 6 + 10,
          .bytes_streamed = 10 * 12 + 48,  // eoe ids + weights, own rows
          .bytes_gathered = 10 * 24 + 4 * 8,  // u,h_edge,pv_edge at eoe;
                                              // h,b,ke at the 2 cells
          .bytes_written = 8};
}

KernelCost local_axpy() {
  return {.flops = 2, .bytes_streamed = 16, .bytes_gathered = 0,
          .bytes_written = 8};
}

KernelCost reconstruct(LoopVariant v) {
  KernelCost c{.flops = 6 * 10 + 5,
               .bytes_streamed = 6 * 12 + 48,
               .bytes_gathered = 6 * 40,  // u, dv, xEdge
               .bytes_written = 24};
  if (v == LoopVariant::Irregular) c.scatter_writes = true;
  return c;
}

}  // namespace cost

}  // namespace mpas::sw
