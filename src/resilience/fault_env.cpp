#include "resilience/fault_env.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/error.hpp"

namespace mpas::resilience {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::MsgDrop, "drop"},
    {FaultKind::MsgCorrupt, "corrupt"},
    {FaultKind::MsgDelay, "delay"},
    {FaultKind::RankStall, "stall"},
    {FaultKind::StateCorrupt, "sdc"},
    {FaultKind::TransferFail, "transfer-fail"},
    {FaultKind::TransferCorrupt, "transfer-corrupt"},
    {FaultKind::StorageTornWrite, "torn-write"},
    {FaultKind::StorageShortWrite, "short-write"},
    {FaultKind::StorageBitRot, "bit-rot"},
    {FaultKind::StorageCrash, "storage-crash"},
};

const char* spec_kind_name(FaultKind kind) {
  for (const auto& k : kKindNames)
    if (k.kind == kind) return k.name;
  MPAS_FAIL("unrenderable fault kind " << static_cast<int>(kind));
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string piece;
  std::istringstream in(text);
  while (std::getline(in, piece, sep)) out.push_back(piece);
  return out;
}

std::vector<std::string> tokens(const std::string& entry) {
  std::vector<std::string> out;
  std::istringstream in(entry);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

std::uint64_t parse_uint(const std::string& text, const std::string& where) {
  MPAS_CHECK_MSG(!text.empty() &&
                     text.find_first_not_of("0123456789") == std::string::npos,
                 "MPAS_FAULT: expected unsigned integer for " << where
                                                              << ", got '"
                                                              << text << "'");
  return std::stoull(text);
}

int parse_int(const std::string& text, const std::string& where) {
  std::size_t used = 0;
  int value = 0;
  try {
    value = std::stoi(text, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  MPAS_CHECK_MSG(used == text.size(),
                 "MPAS_FAULT: expected integer for " << where << ", got '"
                                                     << text << "'");
  return value;
}

Real parse_real(const std::string& text, const std::string& where) {
  std::size_t used = 0;
  Real value = 0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  MPAS_CHECK_MSG(used == text.size(),
                 "MPAS_FAULT: expected number for " << where << ", got '"
                                                    << text << "'");
  return value;
}

FaultSpec parse_fault(const std::vector<std::string>& toks) {
  FaultSpec spec;
  std::string head = toks.front();
  const auto at = head.find('@');
  bool counted = false;
  if (at != std::string::npos) {
    spec.at_event = parse_uint(head.substr(at + 1), "@event");
    head = head.substr(0, at);
    counted = true;
  }
  bool known = false;
  for (const auto& k : kKindNames) {
    if (head == k.name) {
      spec.kind = k.kind;
      known = true;
      break;
    }
  }
  MPAS_CHECK_MSG(known, "MPAS_FAULT: unknown fault kind '" << head << "'");
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const auto eq = toks[i].find('=');
    MPAS_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "MPAS_FAULT: expected key=value, got '" << toks[i] << "'");
    const std::string key = toks[i].substr(0, eq);
    const std::string value = toks[i].substr(eq + 1);
    if (key == "from") {
      spec.from = parse_int(value, key);
    } else if (key == "to") {
      spec.to = parse_int(value, key);
    } else if (key == "tag") {
      spec.tag = parse_int(value, key);
    } else if (key == "buffer") {
      spec.buffer = parse_int(value, key);
    } else if (key == "rank") {
      spec.rank = parse_int(value, key);
    } else if (key == "step") {
      spec.step = parse_int(value, key);
    } else if (key == "op") {
      spec.op = parse_int(value, key);
    } else if (key == "repeat") {
      spec.repeat = parse_int(value, key);
    } else if (key == "p") {
      spec.probability = parse_real(value, key);
    } else if (key == "word") {
      spec.word = parse_uint(value, key);
    } else if (key == "bit") {
      spec.bit = static_cast<std::uint32_t>(parse_uint(value, key));
    } else if (key == "ms") {
      spec.stall_seconds = parse_real(value, key) * 1e-3;
    } else {
      MPAS_FAIL("MPAS_FAULT: unknown key '" << key << "'");
    }
  }
  MPAS_CHECK_MSG(!(counted && spec.probability > 0),
                 "MPAS_FAULT: '@event' and 'p=' are mutually exclusive");
  return spec;
}

}  // namespace

FaultCampaign parse_fault_campaign(const std::string& text) {
  FaultCampaign campaign;
  for (const auto& entry : split(text, ';')) {
    const auto toks = tokens(entry);
    if (toks.empty()) continue;  // tolerate empty entries / trailing ';'
    if (toks.front().rfind("seed=", 0) == 0) {
      MPAS_CHECK_MSG(toks.size() == 1,
                     "MPAS_FAULT: 'seed=' takes no further fields");
      campaign.seed = parse_uint(toks.front().substr(5), "seed");
      continue;
    }
    campaign.faults.push_back(parse_fault(toks));
  }
  return campaign;
}

std::string to_string(const FaultCampaign& campaign) {
  std::ostringstream out;
  out.precision(17);  // Real-valued keys (p, ms) must survive the round trip
  out << "seed=" << campaign.seed;
  for (const auto& spec : campaign.faults) {
    out << "; " << spec_kind_name(spec.kind);
    if (spec.probability <= 0) out << '@' << spec.at_event;
    if (spec.from != -1) out << " from=" << spec.from;
    if (spec.to != -1) out << " to=" << spec.to;
    if (spec.tag != -1) out << " tag=" << spec.tag;
    if (spec.buffer != -1) out << " buffer=" << spec.buffer;
    if (spec.rank != -1) out << " rank=" << spec.rank;
    if (spec.step != -1) out << " step=" << spec.step;
    if (spec.op != -1) out << " op=" << spec.op;
    if (spec.repeat != 1) out << " repeat=" << spec.repeat;
    if (spec.probability > 0) out << " p=" << spec.probability;
    if (spec.word != 0) out << " word=" << spec.word;
    if (spec.bit != FaultSpec{}.bit) out << " bit=" << spec.bit;
    if (spec.kind == FaultKind::RankStall &&
        spec.stall_seconds != FaultSpec{}.stall_seconds)
      out << " ms=" << spec.stall_seconds * 1e3;
  }
  return out.str();
}

void arm_campaign(FaultInjector& injector, const FaultCampaign& campaign) {
  for (const auto& spec : campaign.faults) injector.add(spec);
}

FaultInjector* env_fault_injector() {
  static std::unique_ptr<FaultInjector> injector;
  static std::once_flag once;
  std::call_once(once, [] {
    const char* text = std::getenv("MPAS_FAULT");
    if (text == nullptr || *text == '\0') return;
    const FaultCampaign campaign = parse_fault_campaign(text);
    injector = std::make_unique<FaultInjector>(campaign.seed);
    arm_campaign(*injector, campaign);
  });
  return injector.get();
}

}  // namespace mpas::resilience
