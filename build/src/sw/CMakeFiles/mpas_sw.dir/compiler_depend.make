# Empty compiler generated dependencies file for mpas_sw.
# This may be replaced when dependencies are built.
