// Rank-local mesh views with multi-layer halos, and the exchange plans that
// keep halo copies coherent.
//
// Entity ordering inside a LocalMesh makes every kernel's iteration range a
// prefix:
//   cells:    owned (L0) | halo layer 1 | halo layer 2 | ...
//   edges:    owned | inner-compute | compute | ghost
//             owned:          this rank updates the prognostic u here;
//             inner-compute:  both cells within L0+L1 — the pv_edge (APVM)
//                             pattern is computable here;
//             compute:        both cells local — h_edge / v_tangent /
//                             momentum-gather patterns are computable;
//             ghost:          one adjacent cell is off-rank; values arrive
//                             only by exchange.
//   vertices: compute (all three cells local) | ghost
//
// The redundant computation on halo layer 1 (the paper: "Redundant
// computations might be introduced to increase the concurrency") trades
// one halo exchange of every diagnostic for recomputing diagnostics where
// the inputs are locally available; only provis/state and pv_edge must be
// exchanged (the two "Exchange halo" marks per substep in Figure 4).
#pragma once

#include <unordered_map>

#include "partition/partitioner.hpp"

namespace mpas::partition {

struct LocalMesh {
  int rank = 0;
  mesh::VoronoiMesh mesh;  // connectivity remapped to local indices;
                           // references to off-rank entities = kInvalidIndex

  Index num_owned_cells = 0;
  Index num_compute_cells = 0;    // L0 + L1
  Index num_owned_edges = 0;
  Index num_inner_edges = 0;      // prefix where pv_edge is computable
  Index num_compute_edges = 0;    // prefix where both cells are local
  Index num_compute_vertices = 0;

  std::vector<int> cell_layer;    // [local cells] 0 = owned

  // Global -> local lookups (for exchange-plan construction).
  std::unordered_map<GlobalIndex, Index> cell_local;
  std::unordered_map<GlobalIndex, Index> edge_local;
};

/// Build rank `rank`'s local mesh with `halo_layers` cell layers (>= 2
/// required by the kernel ranges above).
LocalMesh build_local_mesh(const mesh::VoronoiMesh& global,
                           const Partition& part, int rank,
                           int halo_layers = 2);

/// One rank's halo-exchange plan: per peer, index-aligned send/recv lists
/// of local indices (both sides sorted by global id, so send[i] on the
/// owner matches recv[i] here).
struct ExchangePlan {
  struct Peer {
    int rank = -1;
    std::vector<Index> send_cells, recv_cells;
    std::vector<Index> send_edges, recv_edges;
  };
  std::vector<Peer> peers;

  [[nodiscard]] std::int64_t recv_cell_count() const;
  [[nodiscard]] std::int64_t recv_edge_count() const;
  /// Bytes received per exchanged Real-valued field on the given location.
  [[nodiscard]] std::int64_t halo_bytes(MeshLocation loc) const;
  [[nodiscard]] int num_neighbors() const {
    return static_cast<int>(peers.size());
  }
};

/// Build all ranks' plans at once (requires all local meshes).
std::vector<ExchangePlan> build_exchange_plans(
    const mesh::VoronoiMesh& global, const Partition& part,
    const std::vector<LocalMesh>& locals);

/// Lightweight per-rank halo statistics (counts only, no local mesh
/// materialization) — what the scaling benches feed the timing simulator.
struct HaloStats {
  Index owned_cells = 0;
  Index compute_cells = 0;   // owned + layer 1
  Index halo_cells = 0;      // all halo layers
  Index owned_edges = 0;
  Index halo_edges = 0;      // local non-owned edges
  int neighbors = 0;

  /// Bytes moved per halo sync exchanging one cell field + one edge field.
  [[nodiscard]] std::int64_t sync_bytes() const {
    return static_cast<std::int64_t>(halo_cells + halo_edges) *
           static_cast<std::int64_t>(sizeof(Real));
  }
};

HaloStats compute_halo_stats(const mesh::VoronoiMesh& global,
                             const Partition& part, int rank,
                             int halo_layers = 2);

/// The rank with the most work (max owned cells), whose stats bound the
/// per-step time in a bulk-synchronous run.
HaloStats worst_rank_halo_stats(const mesh::VoronoiMesh& global,
                                const Partition& part, int halo_layers = 2);

}  // namespace mpas::partition
