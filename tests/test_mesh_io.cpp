// Round-trip and corruption tests for the binary mesh format.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>

#include "mesh/mesh_cache.hpp"
#include "mesh/mesh_io.hpp"
#include "util/error.hpp"

namespace mpas::mesh {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(MeshIo, RoundTripPreservesEverything) {
  const VoronoiMesh m = build_icosahedral_voronoi_mesh(3);
  const std::string path = temp_path("mpas_roundtrip.mpasmesh");
  save_mesh(m, path);
  const VoronoiMesh r = load_mesh(path);
  std::remove(path.c_str());

  EXPECT_EQ(r.num_cells, m.num_cells);
  EXPECT_EQ(r.num_edges, m.num_edges);
  EXPECT_EQ(r.num_vertices, m.num_vertices);
  EXPECT_EQ(r.subdivision_level, m.subdivision_level);
  EXPECT_EQ(r.sphere_radius, m.sphere_radius);
  EXPECT_EQ(r.edges_on_cell, m.edges_on_cell);
  EXPECT_EQ(r.cells_on_edge, m.cells_on_edge);
  EXPECT_EQ(r.weights_on_edge, m.weights_on_edge);
  EXPECT_EQ(r.kite_areas_on_vertex, m.kite_areas_on_vertex);
  ASSERT_EQ(r.area_cell.size(), m.area_cell.size());
  for (std::size_t i = 0; i < m.area_cell.size(); ++i)
    EXPECT_EQ(r.area_cell[i], m.area_cell[i]);
  ASSERT_EQ(r.x_cell.size(), m.x_cell.size());
  for (std::size_t i = 0; i < m.x_cell.size(); ++i) {
    EXPECT_EQ(r.x_cell[i].x, m.x_cell[i].x);
    EXPECT_EQ(r.x_cell[i].z, m.x_cell[i].z);
  }
  r.validate();
}

TEST(MeshIo, MissingFileThrows) {
  EXPECT_THROW(load_mesh("/nonexistent/dir/mesh.mpasmesh"), Error);
}

TEST(MeshIo, BadMagicThrows) {
  const std::string path = temp_path("mpas_badmagic.mpasmesh");
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOTAMESHFILE.................................";
  }
  EXPECT_THROW(load_mesh(path), Error);
  std::remove(path.c_str());
}

TEST(MeshIo, BitFlippedPayloadFailsChecksum) {
  const VoronoiMesh m = build_icosahedral_voronoi_mesh(2);
  const std::string path = temp_path("mpas_bitflip.mpasmesh");
  save_mesh(m, path);
  // Flip one bit deep in the payload: sizes and structure still parse, so
  // only the checksum can catch it.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  ASSERT_GT(size, 1024);
  f.seekg(size / 2);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  f.seekp(size / 2);
  f.write(&byte, 1);
  f.close();
  EXPECT_THROW(load_mesh(path), Error);
  std::remove(path.c_str());
}

TEST(MeshIo, TrailingGarbageDetected) {
  const VoronoiMesh m = build_icosahedral_voronoi_mesh(2);
  const std::string path = temp_path("mpas_trailing.mpasmesh");
  save_mesh(m, path);
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os << "extra";
  }
  EXPECT_THROW(load_mesh(path), Error);
  std::remove(path.c_str());
}

// The cache must *regenerate* (not crash, not trust) on a corrupt file:
// point MPAS_MESH_CACHE at a directory holding a damaged level-2 file and
// ask for the mesh — the damaged file is replaced and the result valid.
class MeshCacheCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mpas_cache_corrupt_" +
            std::to_string(static_cast<long>(::getpid())));
    std::filesystem::create_directories(dir_);
    prev_ = ::getenv("MPAS_MESH_CACHE") != nullptr
                ? std::optional<std::string>(::getenv("MPAS_MESH_CACHE"))
                : std::nullopt;
    ::setenv("MPAS_MESH_CACHE", dir_.c_str(), 1);
  }
  void TearDown() override {
    if (prev_)
      ::setenv("MPAS_MESH_CACHE", prev_->c_str(), 1);
    else
      ::unsetenv("MPAS_MESH_CACHE");
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string cache_file(int level) const {
    return (dir_ / ("icos_level" + std::to_string(level) + ".mpasmesh"))
        .string();
  }
  std::filesystem::path dir_;
  std::optional<std::string> prev_;
};

TEST_F(MeshCacheCorruption, TruncatedCacheFileRegenerates) {
  const VoronoiMesh m = build_icosahedral_voronoi_mesh(1);
  const std::string path = cache_file(1);
  save_mesh(m, path);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 3);

  const auto mesh = get_global_mesh(1);
  ASSERT_NE(mesh, nullptr);
  EXPECT_EQ(mesh->num_cells, m.num_cells);
  mesh->validate();
  // The damaged file was replaced by a loadable one.
  const VoronoiMesh reloaded = load_mesh(path);
  EXPECT_EQ(reloaded.num_cells, m.num_cells);
}

TEST_F(MeshCacheCorruption, BitFlippedCacheFileRegenerates) {
  const VoronoiMesh m = build_icosahedral_voronoi_mesh(2);
  const std::string path = cache_file(2);
  save_mesh(m, path);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  f.seekp(2 * size / 3);
  const char byte = 0x55;
  f.write(&byte, 1);
  f.close();

  const auto mesh = get_global_mesh(2);
  ASSERT_NE(mesh, nullptr);
  EXPECT_EQ(mesh->num_cells, m.num_cells);
  mesh->validate();
}

TEST(MeshIo, TruncatedFileThrows) {
  const VoronoiMesh m = build_icosahedral_voronoi_mesh(2);
  const std::string full = temp_path("mpas_full.mpasmesh");
  save_mesh(m, full);
  // Truncate to the first half.
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::string cut = temp_path("mpas_cut.mpasmesh");
  {
    std::ofstream os(cut, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(load_mesh(cut), Error);
  std::remove(full.c_str());
  std::remove(cut.c_str());
}

// Truncation sweep: a cache file cut at ANY length must throw Error —
// never crash, never allocate from a fabricated element count (the byte
// budget bounds every count by the bytes actually present). Dense over
// the header and first length words, strided through the bulk payload.
TEST(MeshIo, TruncationSweepFailsClosedEverywhere) {
  const VoronoiMesh m = build_icosahedral_voronoi_mesh(1);
  const std::string full = temp_path("mpas_sweep_full.mpasmesh");
  save_mesh(m, full);
  std::ifstream in(full, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  std::remove(full.c_str());
  ASSERT_GT(bytes.size(), 256u);

  const std::string cut = temp_path("mpas_sweep_cut.mpasmesh");
  const auto try_size = [&](std::size_t size) {
    {
      std::ofstream os(cut, std::ios::binary);
      os.write(bytes.data(), static_cast<std::streamsize>(size));
    }
    EXPECT_THROW(load_mesh(cut), Error) << "truncated to " << size << " of "
                                        << bytes.size() << " bytes";
  };
  for (std::size_t size = 0; size < 256; ++size) try_size(size);
  for (std::size_t size = 256; size < bytes.size(); size += 19)
    try_size(size);
  try_size(bytes.size() - 1);
  std::remove(cut.c_str());
}

}  // namespace
}  // namespace mpas::mesh
