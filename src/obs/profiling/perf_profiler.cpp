#include "obs/profiling/perf_profiler.hpp"

#include <cstdlib>
#include <thread>

#include "obs/profiling/profile_trace.hpp"
#include "obs/trace.hpp"

namespace mpas::obs::profiling {

namespace {

/// The per-thread counter group for sampled calls. Opened lazily on the
/// first sampled call of each thread, closed at thread exit.
HwCounterGroup& thread_counters() {
  thread_local HwCounterGroup group;
  return group;
}

util::Mutex& profile_session_mutex() {
  // Guards only the session path string; never held across a write or
  // together with the profiler's registry mutex.
  static util::Mutex mutex{"obs.profiler.session",
                           util::lockrank::kPerfProfiler};
  return mutex;
}

std::string& profile_session_path() {
  static std::string path;
  return path;
}

}  // namespace

// ---- Slot -----------------------------------------------------------------

void ProfileHandle::Slot::record(double seconds) {
  micros.record(seconds * 1e6);
  const std::uint64_t n = calls.fetch_add(1, std::memory_order_relaxed);
  double cur = total_s.load(std::memory_order_relaxed);
  while (!total_s.compare_exchange_weak(cur, cur + seconds,
                                        std::memory_order_relaxed)) {
  }
  if (n == 0) {
    min_s.store(seconds, std::memory_order_relaxed);
    max_s.store(seconds, std::memory_order_relaxed);
    return;
  }
  cur = min_s.load(std::memory_order_relaxed);
  while (seconds < cur && !min_s.compare_exchange_weak(
                              cur, seconds, std::memory_order_relaxed)) {
  }
  cur = max_s.load(std::memory_order_relaxed);
  while (seconds > cur && !max_s.compare_exchange_weak(
                              cur, seconds, std::memory_order_relaxed)) {
  }
}

void ProfileHandle::Slot::add_counters(const HwCounterSample& s) {
  if (!s.valid) return;
  counter_samples.fetch_add(1, std::memory_order_relaxed);
  auto add = [](std::atomic<double>& acc, double delta) {
    double cur = acc.load(std::memory_order_relaxed);
    while (!acc.compare_exchange_weak(cur, cur + delta,
                                      std::memory_order_relaxed)) {
    }
  };
  add(cycles, static_cast<double>(s.cycles));
  add(instructions, static_cast<double>(s.instructions));
  add(llc_misses, static_cast<double>(s.llc_misses));
  if (s.stalled_valid)
    add(stalled_cycles, static_cast<double>(s.stalled_cycles));
}

// ---- ProfileScope ---------------------------------------------------------

ProfileScope::ProfileScope(PerfProfiler& profiler,
                           const ProfileHandle& handle) {
  if (!profiler.enabled() || !handle.valid()) return;
  slot_ = handle.slot_;
  const std::uint32_t every = profiler.sample_every();
  if (every != 0 && HwCounterGroup::available() &&
      slot_->calls.load(std::memory_order_relaxed) % every == 0) {
    sampling_ = true;
    thread_counters().start();
  }
  start_s_ = monotonic_seconds();
}

ProfileScope::~ProfileScope() {
  if (slot_ == nullptr) return;
  const double elapsed = monotonic_seconds() - start_s_;
  if (sampling_) slot_->add_counters(thread_counters().stop());
  slot_->record(elapsed);
}

// ---- PerfProfiler ---------------------------------------------------------

ProfileHandle::Slot* PerfProfiler::find_or_create(const ProfileKey& key) {
  const util::LockGuard lock(mutex_);
  std::unique_ptr<ProfileHandle::Slot>& slot = slots_[key.flat()];
  if (!slot) {
    slot = std::make_unique<ProfileHandle::Slot>();
    slot->key = key;
  }
  return slot.get();
}

ProfileHandle PerfProfiler::handle(const ProfileKey& key) {
  return ProfileHandle(find_or_create(key));
}

void PerfProfiler::set_prediction(const ProfileKey& key,
                                  double seconds_per_call) {
  find_or_create(key)->predicted_s.store(seconds_per_call,
                                         std::memory_order_relaxed);
}

std::uint64_t PerfProfiler::calls(const ProfileHandle& h) const {
  return h.valid() ? h.slot_->calls.load(std::memory_order_relaxed) : 0;
}

double PerfProfiler::total_seconds(const ProfileHandle& h) const {
  return h.valid() ? h.slot_->total_s.load(std::memory_order_relaxed) : 0.0;
}

Profile PerfProfiler::to_profile(const std::string& backend, int threads,
                                 int mesh_level) const {
  Profile profile;
  profile.env = bench_harness::current_fingerprint();
  profile.env.mesh_level = mesh_level;
  profile.threads = threads;
  profile.backend = backend;
  profile.counters_available = HwCounterGroup::available();
  {
    const util::LockGuard lock(mutex_);
    for (const auto& [flat, slot] : slots_) {
      ProfileEntry e;
      e.key = slot->key;
      e.calls = slot->calls.load(std::memory_order_relaxed);
      e.total_s = slot->total_s.load(std::memory_order_relaxed);
      e.min_s = slot->min_s.load(std::memory_order_relaxed);
      e.max_s = slot->max_s.load(std::memory_order_relaxed);
      e.p50_s = slot->micros.quantile(0.50) / 1e6;
      e.p95_s = slot->micros.quantile(0.95) / 1e6;
      e.p99_s = slot->micros.quantile(0.99) / 1e6;
      e.predicted_s_per_call =
          slot->predicted_s.load(std::memory_order_relaxed);
      e.counters.samples =
          slot->counter_samples.load(std::memory_order_relaxed);
      e.counters.cycles = slot->cycles.load(std::memory_order_relaxed);
      e.counters.instructions =
          slot->instructions.load(std::memory_order_relaxed);
      e.counters.llc_misses =
          slot->llc_misses.load(std::memory_order_relaxed);
      e.counters.stalled_cycles =
          slot->stalled_cycles.load(std::memory_order_relaxed);
      profile.entries.push_back(std::move(e));
    }
  }
  profile.sort_entries();
  return profile;
}

void PerfProfiler::reset() {
  const util::LockGuard lock(mutex_);
  for (auto& [flat, slot] : slots_) {
    slot->micros.reset();
    slot->calls.store(0, std::memory_order_relaxed);
    slot->total_s.store(0, std::memory_order_relaxed);
    slot->min_s.store(0, std::memory_order_relaxed);
    slot->max_s.store(0, std::memory_order_relaxed);
    slot->counter_samples.store(0, std::memory_order_relaxed);
    slot->cycles.store(0, std::memory_order_relaxed);
    slot->instructions.store(0, std::memory_order_relaxed);
    slot->llc_misses.store(0, std::memory_order_relaxed);
    slot->stalled_cycles.store(0, std::memory_order_relaxed);
  }
}

PerfProfiler& PerfProfiler::global() {
  // Heap singleton + armed-from-env session, the MPAS_TRACE/MPAS_METRICS
  // idiom: never destroyed, so worker threads and other atexit hooks may
  // record safely during shutdown.
  static PerfProfiler* profiler = [] {
    auto* p = new PerfProfiler();
    if (const auto path = env_profile_path()) {
      p->set_enabled(true);
      {
        const util::LockGuard lock(profile_session_mutex());
        profile_session_path() = *path;
      }
      std::atexit([] { write_profile_now(); });
    }
    return p;
  }();
  return *profiler;
}

// ---- environment/file session ---------------------------------------------

std::optional<std::string> env_profile_path() {
  const char* path = std::getenv("MPAS_PROFILE");
  if (path == nullptr || *path == '\0') return std::nullopt;
  return std::string(path);
}

void start_profile_file(std::string path) {
  PerfProfiler::global().set_enabled(true);
  {
    const util::LockGuard lock(profile_session_mutex());
    profile_session_path() = std::move(path);
  }
  static bool registered = [] {
    std::atexit([] { write_profile_now(); });
    return true;
  }();
  (void)registered;
}

std::string profile_file_path() {
  const util::LockGuard lock(profile_session_mutex());
  return profile_session_path();
}

void write_profile_now() {
  std::string path;
  {
    const util::LockGuard lock(profile_session_mutex());
    path = profile_session_path();
  }
  if (path.empty()) return;
  const Profile profile = PerfProfiler::global().to_profile(
      "process", static_cast<int>(std::thread::hardware_concurrency()));
  // When a trace session is live, lay the measured-vs-modeled overlay into
  // it before flushing, so one Perfetto file carries prediction,
  // measurement, and divergence on adjacent lanes regardless of which
  // exit hook runs first.
  auto& recorder = TraceRecorder::global();
  static std::atomic<bool> overlay_done{false};
  if (recorder.enabled() && !profile.entries.empty() &&
      !overlay_done.exchange(true, std::memory_order_relaxed)) {
    record_profile_overlay(profile, recorder, "profile: measured vs modeled");
    write_trace_now();
  }
  write_profile_file(profile, path);  // never throws from an atexit hook
}

}  // namespace mpas::obs::profiling
