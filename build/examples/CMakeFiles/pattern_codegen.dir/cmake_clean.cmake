file(REMOVE_RECURSE
  "CMakeFiles/pattern_codegen.dir/pattern_codegen.cpp.o"
  "CMakeFiles/pattern_codegen.dir/pattern_codegen.cpp.o.d"
  "pattern_codegen"
  "pattern_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
