// The versioned on-disk checkpoint format.
//
// A durable checkpoint is a flat byte stream: one fixed-size header chunk
// followed by one chunk per (rank, slot) array. Every chunk carries its own
// integrity word — the header a local FNV over its fields, each slot the
// PR-1 envelope checksum seeded with a (step, rank, slot) sequence — so a
// reader can pinpoint damage without trusting any other part of the file.
//
//   header   magic "MPASCKP1" | u32 version | u32 reserved
//            | i64 step | u64 user_tag | u64 slot_count | u64 header_crc
//   slot     i32 rank | i32 slot | u64 count | u64 crc | Real data[count]
//
// decode_checkpoint throws mpas::Error on ANY damage — truncation anywhere
// (declared counts are bounds-checked against the remaining bytes *before*
// any allocation, so bit-rotted counts cannot OOM), bad magic or version,
// header or slot checksum mismatch, trailing garbage. Fail closed: the
// store falls back to an older generation rather than ever returning a
// suspect image.
//
// The encoder returns the chunk list (not one fused buffer) so the store
// can present every chunk write as a distinct fault-injection point.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace mpas::resilience::durable {

inline constexpr std::uint32_t kFormatVersion = 1;

/// One saved array: whatever the producer indexes by (the service codec
/// uses rank 0 and FieldId slots).
struct CheckpointSlot {
  int rank = 0;
  int slot = 0;
  std::vector<Real> data;
};

/// A complete in-memory checkpoint: the unit the writer publishes and the
/// reader returns. `user_tag` is opaque to the format — the service stores
/// the prognostic state hash there so recovery can verify the restore.
struct CheckpointImage {
  std::int64_t step = 0;
  std::uint64_t user_tag = 0;
  std::vector<CheckpointSlot> slots;

  [[nodiscard]] std::size_t payload_bytes() const;
};

/// Serialize to the ordered chunk list (header first, then one chunk per
/// slot, in slot order). Concatenating the chunks yields the file image.
std::vector<std::vector<std::uint8_t>> encode_chunks(
    const CheckpointImage& image);

/// Parse + verify a full file image. Throws mpas::Error on any damage.
CheckpointImage decode_checkpoint(const std::vector<std::uint8_t>& bytes);

/// The checksum seed for one slot: mixes step, rank, and slot so a chunk
/// transplanted from another position or generation does not verify.
std::uint64_t slot_seq(std::int64_t step, int rank, int slot);

}  // namespace mpas::resilience::durable
