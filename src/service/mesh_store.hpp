// Refcounted shared mesh store for co-resident sessions.
//
// Sessions at the same subdivision level share one immutable mesh instead
// of building (or even cache-loading) their own copy; the store tracks how
// many sessions hold each level so the degraded-fidelity admission rung —
// which herds overload traffic onto a coarser shared level — reuses what
// is already resident. Acquisition goes through mesh::get_global_mesh, so
// the disk cache and its corruption handling apply unchanged; the store's
// own entry is dropped when the last session releases a level.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "mesh/mesh.hpp"
#include "util/annotations.hpp"
#include "util/lock_ranks.hpp"
#include "util/mutex.hpp"

namespace mpas::service {

/// A session's lease on a shared mesh: RAII release on destruction.
class MeshLease;

class MeshStore {
 public:
  /// Shared mesh for `level`; builds/loads on first acquisition, bumps the
  /// refcount otherwise. Publishes service.mesh_store.* gauges.
  [[nodiscard]] MeshLease acquire(int level);

  [[nodiscard]] std::size_t resident_levels() const;
  [[nodiscard]] int refs(int level) const;

 private:
  friend class MeshLease;
  void release(int level);
  void publish_locked() const MPAS_REQUIRES(mutex_);

  struct Entry {
    std::shared_ptr<const mesh::VoronoiMesh> mesh;
    int refs = 0;
  };

  mutable util::Mutex mutex_{"service.mesh_store",
                             util::lockrank::kMeshStore};
  std::map<int, Entry> entries_ MPAS_GUARDED_BY(mutex_);
};

class MeshLease {
 public:
  MeshLease() = default;
  MeshLease(MeshLease&& other) noexcept
      : store_(other.store_), level_(other.level_), mesh_(std::move(other.mesh_)) {
    other.store_ = nullptr;
  }
  MeshLease& operator=(MeshLease&& other) noexcept {
    if (this != &other) {
      reset();
      store_ = other.store_;
      level_ = other.level_;
      mesh_ = std::move(other.mesh_);
      other.store_ = nullptr;
    }
    return *this;
  }
  MeshLease(const MeshLease&) = delete;
  MeshLease& operator=(const MeshLease&) = delete;
  ~MeshLease() { reset(); }

  void reset() {
    if (store_ != nullptr) store_->release(level_);
    store_ = nullptr;
    mesh_.reset();
  }

  [[nodiscard]] const mesh::VoronoiMesh& operator*() const { return *mesh_; }
  [[nodiscard]] const mesh::VoronoiMesh* operator->() const {
    return mesh_.get();
  }
  [[nodiscard]] const mesh::VoronoiMesh* get() const { return mesh_.get(); }
  [[nodiscard]] int level() const { return level_; }
  [[nodiscard]] explicit operator bool() const { return mesh_ != nullptr; }

 private:
  friend class MeshStore;
  MeshLease(MeshStore* store, int level,
            std::shared_ptr<const mesh::VoronoiMesh> mesh)
      : store_(store), level_(level), mesh_(std::move(mesh)) {}

  MeshStore* store_ = nullptr;
  int level_ = 0;
  std::shared_ptr<const mesh::VoronoiMesh> mesh_;
};

}  // namespace mpas::service
