// Shared helpers for the figure/table regeneration benches.
//
// Each bench binary prints the rows/series of one table or figure of the
// paper (plus the paper's reported values where applicable, for side-by-side
// shape comparison), writes a CSV next to it, and emits one machine-readable
// BENCH_<suite>.json report through the bench_harness layer. The output
// directory resolves as: --out-dir=DIR (or out_dir=DIR) flag, then the
// MPAS_BENCH_OUT environment variable, then ./bench_out.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_harness/attribution.hpp"
#include "bench_harness/report.hpp"
#include "bench_harness/runner.hpp"
#include "core/schedule.hpp"
#include "machine/machine_model.hpp"
#include "sw/model.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

namespace mpas::bench {

namespace harness = bench_harness;

namespace detail {

inline std::string& out_dir_storage() {
  static std::string dir;
  return dir;
}

}  // namespace detail

/// The binary's report; bench_init names it and arranges its JSON at exit.
inline harness::BenchReport& report() {
  static harness::BenchReport rep;
  return rep;
}

inline std::string out_dir() {
  std::string& dir = detail::out_dir_storage();
  if (dir.empty()) {
    const char* env = std::getenv("MPAS_BENCH_OUT");
    dir = (env != nullptr && *env != '\0') ? env : "bench_out";
  }
  std::filesystem::create_directories(dir);
  return dir;
}

/// Shared bench entry point: parses key=value options (with --out-dir=DIR
/// and --out-dir DIR accepted as sugar for out_dir=DIR), resolves the
/// output directory, stamps the report with the suite name and environment
/// fingerprint, and registers the exit hook that writes
/// <out_dir>/BENCH_<suite>.json after main returns.
inline Config bench_init(int argc, char** argv, const std::string& suite) {
  std::vector<std::string> rewritten;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out-dir=", 0) == 0)
      rewritten.push_back("out_dir=" + arg.substr(10));
    else if (arg == "--out-dir" && i + 1 < argc)
      rewritten.push_back(std::string("out_dir=") + argv[++i]);
    else
      rewritten.push_back(arg);
  }
  std::vector<const char*> args;
  args.push_back(argc > 0 ? argv[0] : "bench");
  for (const auto& a : rewritten) args.push_back(a.c_str());
  const Config cfg =
      Config::from_args(static_cast<int>(args.size()), args.data());
  if (cfg.has("out_dir"))
    detail::out_dir_storage() = cfg.get_string("out_dir", "bench_out");

  harness::BenchReport& rep = report();
  rep.set_suite(suite);
  rep.environment() = harness::current_fingerprint();
  rep.environment().machine_preset = "paper_platform";

  // Resolve (and create) the output directory now so the statics behind
  // out_dir() are constructed before the exit hook registers — atexit
  // handlers run before the destructors of later-constructed statics.
  out_dir();
  static bool registered = [] {
    std::atexit([] {
      harness::BenchReport& r = report();
      if (r.suite().empty()) return;
      const std::string path = out_dir() + "/BENCH_" + r.suite() + ".json";
      try {
        r.write_json(path);
      } catch (const std::exception& e) {  // never throw out of atexit
        std::fprintf(stderr, "[json] write failed: %s\n", e.what());
        return;
      }
      std::printf("[json] %s\n", path.c_str());
    });
    return true;
  }();
  (void)registered;
  return cfg;
}

inline void emit(const Table& table, const std::string& name) {
  std::printf("%s\n", table.to_ascii().c_str());
  const std::string path = out_dir() + "/" + name + ".csv";
  table.write_csv(path);
  std::printf("[csv] %s\n\n", path.c_str());
  report().add_table(table, name);
}

/// Deterministic machine-model output: compared tightly by bench_compare.
inline void add_modeled(
    const std::string& name, Real value, const std::string& unit,
    harness::Direction direction = harness::Direction::LowerIsBetter) {
  report().add_value(name, static_cast<double>(value), unit,
                     harness::SeriesKind::Modeled, direction);
}

/// Structural/context value: present in the report, never gated on.
inline void add_info(const std::string& name, Real value,
                     const std::string& unit) {
  report().add_value(name, static_cast<double>(value), unit,
                     harness::SeriesKind::Modeled,
                     harness::Direction::Informational);
}

/// Wall-time repetition series: compared with the wide CI-noise band.
inline void add_measured(
    const std::string& name, const harness::RunResult& run,
    const std::string& unit,
    harness::Direction direction = harness::Direction::LowerIsBetter) {
  report().add_samples(name, run.samples, unit, harness::SeriesKind::Measured,
                       direction);
}

/// The three per-step schedules of one execution strategy.
struct StepSchedules {
  core::Schedule setup, early, final;
};

enum class Strategy {
  SerialBaseline,  // original code: host, 1 core, irregular loops
  HostOnly,        // refactored code on the full host CPU
  AccelOnly,       // everything offloaded to the Phi
  KernelLevel,     // Figure 2 hybrid
  PatternLevel,    // Figure 4(b) hybrid
};

inline const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::SerialBaseline: return "cpu-serial(original)";
    case Strategy::HostOnly: return "cpu-10-core";
    case Strategy::AccelOnly: return "mic-only";
    case Strategy::KernelLevel: return "kernel-level";
    case Strategy::PatternLevel: return "pattern-driven";
  }
  return "?";
}

inline StepSchedules make_schedules(const sw::SwGraphs& graphs, Strategy s,
                                    const core::MeshSizes& sizes,
                                    const core::SimOptions& opts) {
  using core::DeviceSide;
  switch (s) {
    case Strategy::SerialBaseline:
      return {core::make_serial_baseline_schedule(graphs.setup),
              core::make_serial_baseline_schedule(graphs.early),
              core::make_serial_baseline_schedule(graphs.final)};
    case Strategy::HostOnly:
      return {core::make_single_device_schedule(graphs.setup,
                                                DeviceSide::Host, "host"),
              core::make_single_device_schedule(graphs.early,
                                                DeviceSide::Host, "host"),
              core::make_single_device_schedule(graphs.final,
                                                DeviceSide::Host, "host")};
    case Strategy::AccelOnly:
      return {core::make_single_device_schedule(graphs.setup,
                                                DeviceSide::Accel, "mic"),
              core::make_single_device_schedule(graphs.early,
                                                DeviceSide::Accel, "mic"),
              core::make_single_device_schedule(graphs.final,
                                                DeviceSide::Accel, "mic")};
    case Strategy::KernelLevel:
      return {core::make_kernel_level_schedule(graphs.setup, sizes, opts),
              core::make_kernel_level_schedule(graphs.early, sizes, opts),
              core::make_kernel_level_schedule(graphs.final, sizes, opts)};
    case Strategy::PatternLevel:
      return {core::make_pattern_level_schedule(graphs.setup, sizes, opts),
              core::make_pattern_level_schedule(graphs.early, sizes, opts),
              core::make_pattern_level_schedule(graphs.final, sizes, opts)};
  }
  return {};
}

/// Modeled seconds for one full RK-4 time step: setup + 3 early substeps +
/// the final substep (Algorithm 1).
inline Real modeled_step_time(const sw::SwGraphs& graphs,
                              const StepSchedules& s,
                              const core::MeshSizes& sizes,
                              const core::SimOptions& opts) {
  return core::simulate_schedule(graphs.setup, s.setup, sizes, opts).makespan +
         3 * core::simulate_schedule(graphs.early, s.early, sizes, opts)
                 .makespan +
         core::simulate_schedule(graphs.final, s.final, sizes, opts).makespan;
}

/// Convenience: options for one strategy (the serial baseline downgrades
/// the host optimization level).
inline core::SimOptions options_for(Strategy s) {
  core::SimOptions o;
  o.platform = machine::paper_platform();
  if (s == Strategy::SerialBaseline)
    o.host_opt = machine::OptLevel::SerialBaseline;
  return o;
}

inline Real strategy_step_time(const sw::SwGraphs& graphs, Strategy s,
                               const core::MeshSizes& sizes) {
  const core::SimOptions opts = options_for(s);
  return modeled_step_time(graphs, make_schedules(graphs, s, sizes, opts),
                           sizes, opts);
}

/// Trace-derived attribution of one early RK substep under a strategy: the
/// schedule is simulated once more with tracing on and the resulting span
/// list is aggregated into per-pattern/per-kernel time, imbalance, overlap
/// efficiency, and per-device roofline utilization.
inline harness::AttributionReport strategy_attribution(
    const sw::SwGraphs& graphs, Strategy s, const core::MeshSizes& sizes,
    const std::string& track_name) {
  core::SimOptions opts = options_for(s);
  opts.record_trace = true;
  const StepSchedules sched = make_schedules(graphs, s, sizes, opts);
  const auto result =
      core::simulate_schedule(graphs.early, sched.early, sizes, opts);
  return harness::attribute_schedule(graphs.early, sched.early, result, sizes,
                                     opts, track_name);
}

/// Paper Figure 7 reference values (seconds per step / speedups).
struct Fig7Row {
  std::int64_t cells;
  Real cpu_s, kernel_s, pattern_s;     // execution time per step
  Real kernel_speedup, pattern_speedup;
};
inline constexpr Fig7Row kPaperFig7[] = {
    {40962, 0.271, 0.059, 0.045, 4.59, 6.02},
    {163842, 1.115, 0.198, 0.143, 5.63, 7.80},
    {655362, 4.434, 0.741, 0.532, 5.98, 8.34},
    {2621442, 17.528, 2.896, 2.102, 6.05, 8.35},
};

}  // namespace mpas::bench
