#include "obs/metrics.hpp"

#include <cmath>

namespace mpas::obs {

int Histogram::bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // v <= 0 and NaN collapse to bucket 0
  const int e = std::ilogb(value);  // floor(log2(value))
  const int index = e + kZeroOffset + 1;
  if (index < 1) return 0;
  if (index > kBuckets - 1) return kBuckets - 1;
  return index;
}

double Histogram::bucket_lower_edge(int index) {
  if (index <= 0) return 0.0;
  return std::ldexp(1.0, index - 1 - kZeroOffset);
}

double Histogram::quantile_lower_bound(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket_count(i);
    if (seen > target) return bucket_lower_edge(i);
  }
  return bucket_lower_edge(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked like the trace recorder: offload/pool destructors may publish
  // metrics during static teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];  // std::map: node stability keeps pointers valid
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_[name];
}

bool MetricsRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.count(name) > 0 || gauges_.count(name) > 0 ||
         histograms_.count(name) > 0;
}

Table MetricsRegistry::to_table() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Table table({"metric", "kind", "value", "mean", "p50>=", "p99>="});
  for (const auto& [name, c] : counters_)
    table.add_row({name, "counter", std::to_string(c.value()), "-", "-", "-"});
  for (const auto& [name, g] : gauges_)
    table.add_row({name, "gauge", Table::num(g.value()), "-", "-", "-"});
  for (const auto& [name, h] : histograms_)
    table.add_row({name, "histogram", std::to_string(h.count()),
                   Table::num(h.mean()),
                   Table::num(h.quantile_lower_bound(0.50)),
                   Table::num(h.quantile_lower_bound(0.99))});
  return table;
}

std::string MetricsRegistry::to_string() const { return to_table().to_ascii(); }

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace mpas::obs
