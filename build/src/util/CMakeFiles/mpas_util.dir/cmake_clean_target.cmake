file(REMOVE_RECURSE
  "libmpas_util.a"
)
