// The computation kernels of the MPAS shallow-water model, decomposed into
// the paper's basic patterns (Figure 3 / Table I).
//
// Pattern taxonomy used throughout (our reconstruction of Figure 3):
//   A: cell   <- its edges          (divergence, kinetic energy, tend_h, ...)
//   B: cell   <- neighbouring cells (the d2fdx2 thickness Laplacian)
//   C: edge   <- its 2 cells        (h_edge, pressure/KE gradients)
//   D: vertex <- its 3 edges        (relative vorticity / circulation)
//   E: vertex <- its 3 cells        (kite-weighted thickness at vertices)
//   F: edge   <- edgesOnEdge        (tangential velocity reconstruction)
//   G: edge   <- its 2 vertices     (potential vorticity at edges, APVM)
//   H: edge   <- wide neighbourhood (full momentum tendency: edgesOnEdge,
//                                    cells and vertices combined)
//   X: local  (no neighbours)       (RK updates, boundary mask, rotations)
//
// Loop variants (Algorithms 2-4 of the paper):
//   Irregular  — the original Fortran-style traversal: loops over *source*
//                entities and scatters (+=) into shared outputs. Races under
//                threading, so it is only ever run serially; it always
//                processes the whole array (begin/end are ignored) and is
//                the "original code" baseline.
//   Refactored — regularity-aware: loops over *output* entities, gathering
//                from neighbours, with a conditional picking the +/- sign.
//   BranchFree — like Refactored but the sign comes from a precomputed
//                label matrix (edge_sign_on_cell / edge_sign_on_vertex),
//                removing the branch so the loop vectorizes.
// All variants produce identical results bit-for-bit except for the
// Irregular ones, whose different accumulation order can differ by rounding
// (tests pin down both properties).
//
// Every kernel takes an entity range [begin, end) over its OUTPUT space so
// the hybrid runtime can split one pattern across host and accelerator (the
// "adjustable part" of Figure 4(b)).
#pragma once

#include "machine/machine_model.hpp"
#include "sw/fields.hpp"

namespace mpas::sw {

enum class LoopVariant : int { Irregular = 0, Refactored = 1, BranchFree = 2 };

const char* to_string(LoopVariant v);

/// Physical and numerical parameters of the model.
struct SwParams {
  Real gravity = constants::kGravity;
  Real dt = 0;             // time-step size (also used by APVM upwinding)
  Real apvm_factor = 0.5;  // anticipated-potential-vorticity upwinding
  Real nu_del2_u = 0;      // optional del^2 momentum dissipation
  Real nu_del2_h = 0;      // optional del^2 thickness diffusion (d2fdx2)
  bool with_tracer = false;  // advect a conservative passive tracer
};

/// Everything a kernel needs: mesh, fields, parameters, and the
/// Runge-Kutta coefficients the update kernels apply this substep.
struct SwContext {
  const mesh::VoronoiMesh& mesh;
  FieldStore& fields;
  SwParams params;
  Real rk_substep_coeff = 0;  // a_i * dt in provis = state + a_i*dt*tend
  Real rk_accum_coeff = 0;    // b_i * dt in new   += b_i*dt*tend
};

// ---- compute_solve_diagnostics ---------------------------------------------
// Thickness averaged to edges: h_edge = (h(c0)+h(c1))/2.            [C]
void diag_h_edge(const SwContext& ctx, FieldId h_in, Index begin, Index end);

// Kinetic energy at cells: ke = sum 0.25*dc*dv*u^2 / areaCell.      [A]
void diag_ke(const SwContext& ctx, FieldId u_in, Index begin, Index end,
             LoopVariant variant);

// Relative vorticity at vertices: circulation / triangle area.      [D]
void diag_vorticity(const SwContext& ctx, FieldId u_in, Index begin, Index end,
                    LoopVariant variant);

// Velocity divergence at cells.                                     [A]
void diag_divergence(const SwContext& ctx, FieldId u_in, Index begin,
                     Index end, LoopVariant variant);

// Tangential velocity from the TRiSK weights.                       [F]
void diag_v_tangent(const SwContext& ctx, FieldId u_in, Index begin,
                    Index end);

// Kite-weighted thickness at vertices + potential vorticity
// pv_vertex = (f + vorticity)/h_vertex.                             [E]
void diag_h_pv_vertex(const SwContext& ctx, FieldId h_in, Index begin,
                      Index end);

// Potential vorticity averaged back to cells with kite weights.     [H->cell]
void diag_pv_cell(const SwContext& ctx, Index begin, Index end);

// Potential vorticity at edges with APVM upwinding.                 [G]
void diag_pv_edge(const SwContext& ctx, FieldId u_in, Index begin, Index end);

// ---- compute_tend ----------------------------------------------------------
// Thickness tendency: tend_h = -div(h_edge * u).                    [A]
void tend_thickness(const SwContext& ctx, FieldId u_in, Index begin, Index end,
                    LoopVariant variant);

// Momentum tendency: tend_u = qF_perp - grad(g(h+b) + K).           [H/B1]
void tend_momentum(const SwContext& ctx, FieldId h_in, FieldId u_in,
                   Index begin, Index end);

// Optional del^2 thickness diffusion, two stages: the discrete
// Laplacian into D2H [B], then tend_h += nu_h * D2H [X].
void tend_h_laplacian(const SwContext& ctx, FieldId h_in, Index begin,
                      Index end);
void tend_h_add_del2(const SwContext& ctx, Index begin, Index end);

// Optional del^2 momentum dissipation:
// tend_u += nu_u * (grad(divergence) - k x grad(vorticity)).        [C+G]
void tend_u_add_del2(const SwContext& ctx, Index begin, Index end);

// ---- enforce_boundary_edge -------------------------------------------------
// Zero the momentum tendency on boundary edges (a no-op on the full
// sphere, kept for fidelity with Algorithm 1).                      [X]
void enforce_boundary_edge(const SwContext& ctx, Index begin, Index end);

// ---- compute_next_substep_state ---------------------------------------------
// provis = state + (a_i*dt) * tend.                                 [X]
void next_substep_h(const SwContext& ctx, Index begin, Index end);
void next_substep_u(const SwContext& ctx, Index begin, Index end);

// ---- step setup --------------------------------------------------------------
// provis = state at the start of the step, so every RK stage uniformly
// reads the provisional fields (stage 1 then sees the state values). [X]
void seed_provis_h(const SwContext& ctx, Index begin, Index end);
void seed_provis_u(const SwContext& ctx, Index begin, Index end);

// ---- accumulative_update ---------------------------------------------------
// new = state at the start of the step [X], then new += (b_i*dt)*tend.
void init_accum_h(const SwContext& ctx, Index begin, Index end);
void init_accum_u(const SwContext& ctx, Index begin, Index end);
void accumulate_h(const SwContext& ctx, Index begin, Index end);
void accumulate_u(const SwContext& ctx, Index begin, Index end);
// Commit: state = new (end of the RK loop).                         [X]
void commit_h(const SwContext& ctx, Index begin, Index end);
void commit_u(const SwContext& ctx, Index begin, Index end);

// ---- passive tracer (optional model extension) -------------------------------
// Flux-form conservative advection of a passive tracer: the prognostic is
// the tracer mass per area Q = h*q. New *patterns*, same taxonomy:
//   X: mixing ratio q = Q/h at cells;
//   C: q averaged to edges;
//   A: tend_Q = -div(u * h_edge * q_edge)  (conserves total tracer mass
//      to rounding, same telescoping argument as tend_h);
// plus the usual X update kernels. Added to demonstrate the paper's claim
// that the data-flow diagram easily absorbs future model development.
void tracer_ratio(const SwContext& ctx, FieldId q_mass_in, FieldId h_in,
                  Index begin, Index end);
void tracer_edge_value(const SwContext& ctx, Index begin, Index end);
void tend_tracer(const SwContext& ctx, FieldId u_in, Index begin, Index end,
                 LoopVariant variant);
void next_substep_tracer(const SwContext& ctx, Index begin, Index end);
void seed_provis_tracer(const SwContext& ctx, Index begin, Index end);
void init_accum_tracer(const SwContext& ctx, Index begin, Index end);
void accumulate_tracer(const SwContext& ctx, Index begin, Index end);
void commit_tracer(const SwContext& ctx, Index begin, Index end);

/// Initialize the tracer as a cosine bell of mixing ratio 1 at the center
/// tapering to 0 at angular radius `radius` (Williamson TC1's shape):
/// Q = h * q.
void apply_cosine_bell_tracer(const mesh::VoronoiMesh& mesh,
                              FieldStore& fields, Real center_lon,
                              Real center_lat, Real radius);

/// Total tracer mass (integral of Q) — conserved to rounding.
Real total_tracer_mass(const mesh::VoronoiMesh& mesh,
                       const FieldStore& fields);

// ---- mpas_reconstruct ------------------------------------------------------
// Perot reconstruction of the 3-D velocity vector at cell centers.  [A]
void reconstruct_vector(const SwContext& ctx, FieldId u_in, Index begin,
                        Index end, LoopVariant variant);
// Rotation to zonal/meridional components.                          [X6]
void reconstruct_horizontal(const SwContext& ctx, Index begin, Index end);

// ---- per-entity cost signatures (machine-model inputs) ----------------------
// Counted from the loop bodies above, using the mean connectivity degree
// (6 edges/cell, ~10 edgesOnEdge). `scatter` variants of the reducible
// kernels flag their racy writes for the atomic-penalty model.
namespace cost {
machine::KernelCost h_edge();
machine::KernelCost ke(LoopVariant v);
machine::KernelCost vorticity(LoopVariant v);
machine::KernelCost divergence(LoopVariant v);
machine::KernelCost v_tangent();
machine::KernelCost h_pv_vertex();
machine::KernelCost pv_cell();
machine::KernelCost pv_edge();
machine::KernelCost tend_h(LoopVariant v);
machine::KernelCost tend_u();
machine::KernelCost local_axpy();     // the X update kernels
machine::KernelCost reconstruct(LoopVariant v);
}  // namespace cost

}  // namespace mpas::sw
