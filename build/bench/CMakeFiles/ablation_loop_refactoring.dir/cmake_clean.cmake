file(REMOVE_RECURSE
  "CMakeFiles/ablation_loop_refactoring.dir/ablation_loop_refactoring.cpp.o"
  "CMakeFiles/ablation_loop_refactoring.dir/ablation_loop_refactoring.cpp.o.d"
  "ablation_loop_refactoring"
  "ablation_loop_refactoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loop_refactoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
