// Chrome-trace / Perfetto JSON rendering of a TraceRecorder.
//
// The output is the "JSON Array Format with metadata" that both
// chrome://tracing and https://ui.perfetto.dev load directly:
//   { "traceEvents": [ {...}, ... ], "displayTimeUnit": "ms" }
// Tracks map to pids (process_name metadata), lanes to tids (thread_name
// metadata), spans to "X" complete events, instants to "i", counter
// samples to "C". Timestamps are microseconds, as the format requires.
#pragma once

#include <string>

#include "obs/trace.hpp"

namespace mpas::obs {

/// Render the recorder's current contents as one Chrome-trace JSON string.
[[nodiscard]] std::string to_chrome_json(const TraceRecorder& recorder);

/// Write to_chrome_json() to `path` (parent directory must exist).
void write_chrome_trace(const std::string& path,
                        const TraceRecorder& recorder);

}  // namespace mpas::obs
