#include "service/session_manager.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/session.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace mpas::service {

SessionManager::SessionManager(ServiceOptions opts)
    : opts_(opts),
      costs_(opts.sim),
      admission_(opts.admission, &costs_) {
  MPAS_CHECK_MSG(opts_.workers >= 1, "service needs at least one worker");
  MPAS_CHECK_MSG(opts_.max_attempts >= 1, "need at least one attempt");
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

SessionManager::~SessionManager() { shutdown(); }

void SessionManager::set_tenant_weight(const std::string& tenant,
                                       Real weight) {
  const std::lock_guard<std::mutex> lock(mutex_);
  admission_.set_tenant_weight(tenant, weight);
  queue_.set_weight(tenant, weight);
}

AdmissionInput SessionManager::admission_input_locked(
    const std::string& tenant) const {
  AdmissionInput input;
  input.outstanding_total = outstanding_total_;
  input.outstanding_by_tenant = outstanding_by_tenant_;
  input.queued_of_tenant = queue_.size_of_tenant(tenant);
  for (const QueueEntry& e : queue_.snapshot())
    input.queued.push_back(
        {e.id, e.tenant, e.priority, e.cost, e.borrowed, e.seq});
  return input;
}

std::uint64_t SessionManager::submit(SessionRequest request) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  auto rec = std::make_unique<Record>();
  rec->effective = request;
  rec->result.id = id;
  rec->result.tenant = request.tenant;
  rec->result.mesh_level_used = request.mesh_level;
  rec->result.test_case_used = request.test_case;
  rec->result.output_every_used = request.output_every;
  stats_.submitted += 1;

  if (shutdown_) {
    rec->result.state = SessionState::Rejected;
    rec->result.reason = "service is shutting down";
    stats_.rejected += 1;
    records_.emplace(id, std::move(rec));
    publish_locked();
    done_cv_.notify_all();
    return id;
  }

  const AdmissionOutcome verdict =
      admission_.decide(request, admission_input_locked(request.tenant));

  if (verdict.action == AdmissionOutcome::Action::Reject) {
    rec->result.state = SessionState::Rejected;
    rec->result.reason = verdict.reason;
    rec->result.admitted_cost = verdict.cost;
    stats_.rejected += 1;
    MPAS_LOG_WARN << "session " << id << " rejected: " << verdict.reason;
    MPAS_TRACE_INSTANT_ARGS("service:reject",
                            obs::trace_arg("id", static_cast<int64_t>(id)) +
                                "," + obs::trace_arg("tenant", request.tenant));
    records_.emplace(id, std::move(rec));
    publish_locked();
    done_cv_.notify_all();
    return id;
  }

  // Apply the rehearsed evictions before taking the freed capacity.
  for (const auto& [shed_id, why] : verdict.shed) {
    const auto it = records_.find(shed_id);
    if (it == records_.end() || !queue_.remove(shed_id)) continue;
    stats_.shed += 1;
    // A shed session's work was never done: the fairness ledger must not
    // credit its tenant for it.
    stats_.admitted_seconds_by_tenant[it->second->result.tenant] -=
        it->second->result.admitted_cost;
    finish_locked(*it->second, SessionState::Shed, why);
  }

  rec->effective = verdict.effective;
  rec->borrowed = verdict.borrowed;
  rec->result.state = SessionState::Queued;
  rec->result.reason = verdict.reason;
  rec->result.admitted_cost = verdict.cost;
  rec->result.degraded =
      verdict.action == AdmissionOutcome::Action::AdmitDegraded;
  rec->result.mesh_level_used = verdict.effective.mesh_level;
  rec->result.test_case_used = verdict.effective.test_case;
  rec->result.output_every_used = verdict.effective.output_every;

  outstanding_total_ += verdict.cost;
  outstanding_by_tenant_[request.tenant] += verdict.cost;
  stats_.admitted += 1;
  if (rec->result.degraded) stats_.admitted_degraded += 1;
  stats_.admitted_seconds_by_tenant[request.tenant] += verdict.cost;

  queue_.push({id, request.tenant, verdict.effective.priority, verdict.cost,
               verdict.borrowed, id});
  records_.emplace(id, std::move(rec));
  publish_locked();
  work_cv_.notify_one();
  return id;
}

void SessionManager::worker_loop() {
  for (;;) {
    std::uint64_t id = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      if (shutdown_) return;
      const auto entry = queue_.pop();
      if (!entry) continue;
      id = entry->id;
      Record& rec = *records_.at(id);
      rec.result.state = SessionState::Running;
      active_ += 1;
      publish_locked();
    }
    run_one(id);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      active_ -= 1;
      publish_locked();
      done_cv_.notify_all();
    }
  }
}

void SessionManager::run_one(std::uint64_t id) {
  SessionRequest req;
  Record* rec_ptr = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    rec_ptr = records_.at(id).get();  // unique_ptr: stable across inserts
    req = rec_ptr->effective;
  }
  Record& rec = *rec_ptr;

  Real backoff_spent = 0;
  for (int attempt = 1; attempt <= opts_.max_attempts; ++attempt) {
    try {
      SessionResult local;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        rec.result.attempts = attempt;
        local = rec.result;
      }
      const MeshLease lease = meshes_.acquire(req.mesh_level);
      SessionRunContext ctx;
      ctx.id = id;
      ctx.request = &req;
      ctx.mesh = lease.get();
      ctx.cancel = &rec.cancel;
      ctx.modeled_seconds_spent = backoff_spent;
      ctx.sim = opts_.sim;
      run_session(ctx, local);

      const std::lock_guard<std::mutex> lock(mutex_);
      rec.result = local;
      finish_locked(rec, local.state, local.reason);
      return;
    } catch (const TransientError& e) {
      // Exponential backoff in modeled seconds, charged to the deadline.
      const Real backoff =
          opts_.backoff_start_modeled_s * static_cast<Real>(1 << (attempt - 1));
      backoff_spent += backoff;
      const std::lock_guard<std::mutex> lock(mutex_);
      stats_.retries += 1;
      std::ostringstream os;
      if (attempt == opts_.max_attempts) {
        os << "transient fault persisted through " << opts_.max_attempts
           << " attempts: " << e.what();
        rec.result.modeled_seconds = backoff_spent;
        finish_locked(rec, SessionState::Failed, os.str());
        return;
      }
      if (req.deadline_modeled_s > 0 &&
          backoff_spent >= req.deadline_modeled_s) {
        os << "retry backoff (" << backoff_spent
           << " modeled s) exhausted the deadline after attempt " << attempt
           << ": " << e.what();
        rec.result.modeled_seconds = backoff_spent;
        finish_locked(rec, SessionState::TimedOut, os.str());
        return;
      }
      MPAS_LOG_WARN << "session " << id << " attempt " << attempt
                    << " hit a transient fault (" << e.what()
                    << "); backing off " << backoff << " modeled s";
    } catch (const std::exception& e) {
      // Fault isolation: the throwing session unwinds completely (model,
      // pool, offload runtime, mesh lease all die with the frame) and is
      // the only session that ends Failed.
      const std::lock_guard<std::mutex> lock(mutex_);
      std::ostringstream os;
      os << "session threw: " << e.what();
      finish_locked(rec, SessionState::Failed, os.str());
      return;
    }
  }
}

void SessionManager::finish_locked(Record& rec, SessionState state,
                                   const std::string& reason) {
  rec.result.state = state;
  if (!reason.empty()) rec.result.reason = reason;

  // Release the admission reservation (rejected sessions never held one).
  if (state != SessionState::Rejected) {
    const Real cost = rec.result.admitted_cost;
    outstanding_total_ = std::max<Real>(0, outstanding_total_ - cost);
    auto& mine = outstanding_by_tenant_[rec.result.tenant];
    mine = std::max<Real>(0, mine - cost);
  }

  switch (state) {
    case SessionState::Completed: stats_.completed += 1; break;
    case SessionState::Failed: stats_.failed += 1; break;
    case SessionState::Cancelled: stats_.cancelled += 1; break;
    case SessionState::TimedOut: stats_.timed_out += 1; break;
    // Shed/Rejected counters are bumped where the verdict is made.
    default: break;
  }
  MPAS_TRACE_INSTANT_ARGS(
      "service:terminal",
      obs::trace_arg("id", static_cast<int64_t>(rec.result.id)) + "," +
          obs::trace_arg("state", std::string(to_string(state))));
  publish_locked();
  done_cv_.notify_all();
  work_cv_.notify_all();  // freed capacity may unblock nothing, but a
                          // paused->resumed race must not strand workers
}

bool SessionManager::cancel(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end() || is_terminal(it->second->result.state))
    return false;
  Record& rec = *it->second;
  if (rec.result.state == SessionState::Queued && queue_.remove(id)) {
    finish_locked(rec, SessionState::Cancelled, "cancelled while queued");
    return true;
  }
  rec.cancel.store(true, std::memory_order_release);
  return true;
}

void SessionManager::set_paused(bool paused) {
  const std::lock_guard<std::mutex> lock(mutex_);
  paused_ = paused;
  if (!paused_) work_cv_.notify_all();
}

bool SessionManager::drain(long timeout_ms) {
  const long resolved =
      resolve_timeout_ms(timeout_ms, "MPAS_SERVICE_DRAIN_TIMEOUT_MS", 120000);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(resolved);
  std::unique_lock<std::mutex> lock(mutex_);
  return done_cv_.wait_until(lock, deadline, [this] {
    if (active_ > 0 || !queue_.empty()) return false;
    return std::all_of(records_.begin(), records_.end(), [](const auto& kv) {
      return is_terminal(kv.second->result.state);
    });
  });
}

void SessionManager::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    // Queued sessions will never run; running ones are asked to stop at
    // their next step boundary.
    while (const auto entry = queue_.pop()) {
      Record& rec = *records_.at(entry->id);
      finish_locked(rec, SessionState::Cancelled, "service shutdown");
    }
    for (auto& [id, rec] : records_)
      if (!is_terminal(rec->result.state))
        rec->cancel.store(true, std::memory_order_release);
    work_cv_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

SessionResult SessionManager::result(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(id);
  MPAS_CHECK_MSG(it != records_.end(), "unknown session id " << id);
  return it->second->result;
}

std::vector<SessionResult> SessionManager::results() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SessionResult> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(rec->result);
  return out;
}

ServiceStats SessionManager::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SessionManager::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

Real SessionManager::tenant_budget(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return admission_.tenant_budget(tenant);
}

void SessionManager::publish_locked() const {
  auto& registry = obs::MetricsRegistry::global();
  const auto set = [&registry](const std::string& name, double value) {
    registry.gauge(name).set(value);
  };
  set("service.queue_depth", static_cast<double>(queue_.size()));
  set("service.active_sessions", static_cast<double>(active_));
  set("service.outstanding_modeled_s", outstanding_total_);
  set("service.sessions.submitted", static_cast<double>(stats_.submitted));
  set("service.sessions.admitted", static_cast<double>(stats_.admitted));
  set("service.sessions.admitted_degraded",
      static_cast<double>(stats_.admitted_degraded));
  set("service.sessions.rejected", static_cast<double>(stats_.rejected));
  set("service.sessions.shed", static_cast<double>(stats_.shed));
  set("service.sessions.completed", static_cast<double>(stats_.completed));
  set("service.sessions.failed", static_cast<double>(stats_.failed));
  set("service.sessions.cancelled", static_cast<double>(stats_.cancelled));
  set("service.sessions.timed_out", static_cast<double>(stats_.timed_out));
  set("service.sessions.retries", static_cast<double>(stats_.retries));
  for (const auto& [tenant, seconds] : stats_.admitted_seconds_by_tenant)
    set("service.tenant." + tenant + ".admitted_modeled_s", seconds);
}

}  // namespace mpas::service
