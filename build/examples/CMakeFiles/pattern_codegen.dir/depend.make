# Empty dependencies file for pattern_codegen.
# This may be replaced when dependencies are built.
