// The correctness contract of the pattern-driven runtime: executing the
// data-flow graphs — sequentially, with a thread pool, or split across the
// (simulated) devices — reproduces the reference integrator exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "mesh/mesh_cache.hpp"
#include "sw/model.hpp"
#include "sw/reference.hpp"
#include "sw/testcases.hpp"

namespace mpas::sw {
namespace {

SwParams params_for(const mesh::VoronoiMesh& mesh, int tc_number) {
  const auto tc = make_test_case(tc_number);
  SwParams p;
  p.dt = suggested_time_step(*tc, mesh, 0.4);
  return p;
}

void init_model(SwModel& model, int tc_number) {
  const auto tc = make_test_case(tc_number);
  apply_initial_conditions(*tc, model.mesh(), model.fields());
  model.initialize();
}

void init_reference(ReferenceIntegrator& ref, int tc_number) {
  const auto tc = make_test_case(tc_number);
  apply_initial_conditions(*tc, ref.fields().mesh(), ref.fields());
  ref.initialize();
}

void expect_bitwise_equal(const FieldStore& a, const FieldStore& b) {
  for (FieldId id : {FieldId::H, FieldId::U, FieldId::Vorticity,
                     FieldId::PvEdge, FieldId::ReconZonal}) {
    const auto sa = a.get(id);
    const auto sb = b.get(id);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i)
      ASSERT_EQ(sa[i], sb[i]) << field_info(id).name << "[" << i << "]";
  }
}

TEST(HybridModel, DefaultExecutionMatchesReferenceBitwise) {
  const auto mesh = mesh::get_global_mesh(3);
  const SwParams p = params_for(*mesh, 5);

  ReferenceIntegrator ref(*mesh, p, LoopVariant::BranchFree);
  init_reference(ref, 5);
  ref.run(10);

  SwModel model(*mesh, p);
  init_model(model, 5);
  model.run(10);

  expect_bitwise_equal(model.fields(), ref.fields());
}

TEST(HybridModel, ThreadPoolExecutionMatchesReferenceBitwise) {
  const auto mesh = mesh::get_global_mesh(3);
  const SwParams p = params_for(*mesh, 6);

  ReferenceIntegrator ref(*mesh, p, LoopVariant::BranchFree);
  init_reference(ref, 6);
  ref.run(5);

  exec::ThreadPool pool(3);
  SwModel model(*mesh, p);
  model.set_pool(&pool);
  init_model(model, 6);
  model.run(5);

  expect_bitwise_equal(model.fields(), ref.fields());
}

TEST(HybridModel, HybridSplitScheduleMatchesReferenceBitwise) {
  // The paper's Figure 5 experiment in its strongest form: the hybrid
  // pattern-driven schedule (nodes on "host", "accelerator", and range
  // splits) computes exactly the same trajectory. Both sides run
  // branch-free loops, so equality is bitwise here; the paper's run
  // differed at rounding level only because their MIC used different fused
  // operations.
  const auto mesh = mesh::get_global_mesh(3);
  const SwParams p = params_for(*mesh, 5);

  ReferenceIntegrator ref(*mesh, p, LoopVariant::BranchFree);
  init_reference(ref, 5);
  ref.run(10);

  SwModel model(*mesh, p);
  core::SimOptions opts;
  opts.platform = machine::paper_platform();
  const auto sizes =
      core::MeshSizes{mesh->num_cells, mesh->num_edges, mesh->num_vertices};
  const auto& graphs = model.graphs();
  model.set_schedules(
      core::make_pattern_level_schedule(graphs.setup, sizes, opts),
      core::make_pattern_level_schedule(graphs.early, sizes, opts),
      core::make_pattern_level_schedule(graphs.final, sizes, opts));
  init_model(model, 5);
  model.run(10);

  expect_bitwise_equal(model.fields(), ref.fields());
}

TEST(HybridModel, IrregularScheduleMatchesIrregularReference) {
  const auto mesh = mesh::get_global_mesh(3);
  const SwParams p = params_for(*mesh, 5);

  ReferenceIntegrator ref(*mesh, p, LoopVariant::Irregular);
  init_reference(ref, 5);
  ref.run(5);

  SwModel model(*mesh, p);
  const auto& graphs = model.graphs();
  model.set_schedules(core::make_serial_baseline_schedule(graphs.setup),
                      core::make_serial_baseline_schedule(graphs.early),
                      core::make_serial_baseline_schedule(graphs.final));
  init_model(model, 5);
  model.run(5);

  expect_bitwise_equal(model.fields(), ref.fields());
}

TEST(HybridModel, DiffusionGraphsMatchReference) {
  const auto mesh = mesh::get_global_mesh(3);
  SwParams p = params_for(*mesh, 6);
  p.nu_del2_u = 1e5;
  p.nu_del2_h = 1e4;

  ReferenceIntegrator ref(*mesh, p, LoopVariant::BranchFree);
  init_reference(ref, 6);
  ref.run(5);

  SwModel model(*mesh, p);
  EXPECT_EQ(model.graphs().early.num_nodes(), 18);  // diffusion nodes present
  init_model(model, 6);
  model.run(5);

  expect_bitwise_equal(model.fields(), ref.fields());
}

TEST(HybridModel, NodeParallelExecutionMatchesReferenceBitwise) {
  // Level-synchronous concurrent execution of independent patterns — the
  // "inherent parallelism" of the data-flow diagram — must not change a
  // single bit.
  const auto mesh = mesh::get_global_mesh(3);
  const SwParams p = params_for(*mesh, 5);

  ReferenceIntegrator ref(*mesh, p, LoopVariant::BranchFree);
  init_reference(ref, 5);
  ref.run(8);

  exec::ThreadPool pool(4);
  SwModel model(*mesh, p);
  model.set_pool(&pool);
  model.set_node_parallel(true);
  init_model(model, 5);
  model.run(8);

  expect_bitwise_equal(model.fields(), ref.fields());
}

TEST(HybridModel, HaloExchangeHookFiresPerSyncPoint) {
  const auto mesh = mesh::get_global_mesh(2);
  SwModel model(*mesh, params_for(*mesh, 2));
  int provis_syncs = 0, state_syncs = 0, pv_syncs = 0;
  model.set_halo_exchange([&](const std::vector<FieldId>& fields) {
    for (FieldId f : fields) {
      if (f == FieldId::HProvis || f == FieldId::UProvis) ++provis_syncs;
      if (f == FieldId::H || f == FieldId::U) ++state_syncs;
      if (f == FieldId::PvEdge) ++pv_syncs;
    }
  });
  init_model(model, 2);
  provis_syncs = state_syncs = pv_syncs = 0;  // ignore initialize()
  model.step();
  // 3 early substeps x 2 provis fields; 1 final substep x 2 state fields;
  // pv_edge once per substep.
  EXPECT_EQ(provis_syncs, 6);
  EXPECT_EQ(state_syncs, 2);
  EXPECT_EQ(pv_syncs, 4);
}

}  // namespace
}  // namespace mpas::sw
