// Williamson et al. (1992) standard shallow-water test cases on the sphere —
// the validation suite used by the paper ("There are a number of test cases
// [22] available ... we choose the fifth test case").
//
// Implemented cases:
//   2 — global steady-state nonlinear zonal geostrophic flow (analytic
//       solution = initial state; used for convergence/error norms);
//   5 — zonal flow over an isolated mountain (the paper's Figure 5 case);
//   6 — Rossby-Haurwitz wave, wavenumber 4 (vorticity-dominated stress
//       test).
#pragma once

#include <memory>
#include <string>

#include "sw/fields.hpp"

namespace mpas::sw {

class TestCase {
 public:
  virtual ~TestCase() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int williamson_number() const = 0;

  /// Initial fluid thickness h (NOT total height; total = h + b).
  [[nodiscard]] virtual Real thickness(Real lon, Real lat) const = 0;
  /// Bottom topography b.
  [[nodiscard]] virtual Real bottom(Real /*lon*/, Real /*lat*/) const {
    return 0;
  }
  /// Initial wind components.
  [[nodiscard]] virtual Real zonal_wind(Real lon, Real lat) const = 0;
  [[nodiscard]] virtual Real meridional_wind(Real /*lon*/, Real /*lat*/) const {
    return 0;
  }

  /// True when the initial state is an exact steady solution, so the
  /// initial fields double as the analytic solution at any time.
  [[nodiscard]] virtual bool is_steady_state() const { return false; }

  /// Maximum gravity-wave speed estimate, for CFL-based step sizing.
  [[nodiscard]] virtual Real max_wave_speed() const = 0;
};

std::unique_ptr<TestCase> make_test_case(int williamson_number);

/// Fill H, U, Bottom in `fields` from the test case: thickness sampled at
/// cell centers, bottom at cell centers, velocity projected onto edge
/// normals at edge midpoints.
void apply_initial_conditions(const TestCase& tc,
                              const mesh::VoronoiMesh& mesh,
                              FieldStore& fields);

/// A conservative RK-4 step size for this case and mesh:
/// cfl * (min cell spacing) / (u_max + sqrt(g h_max)).
Real suggested_time_step(const TestCase& tc, const mesh::VoronoiMesh& mesh,
                         Real cfl = 0.5);

// ---- error norms ------------------------------------------------------------
struct ErrorNorms {
  Real l1 = 0;
  Real l2 = 0;
  Real linf = 0;
};

/// Area-weighted relative error norms of `field` against `reference`
/// (both defined on cells of `mesh`), as in Williamson et al. Section 8.
ErrorNorms cell_error_norms(const mesh::VoronoiMesh& mesh,
                            std::span<const Real> field,
                            std::span<const Real> reference);

}  // namespace mpas::sw
