// Clang Thread Safety Analysis attribute macros.
//
// Every lock in src/ is part of a machine-checked concurrency contract:
// the annotated util::Mutex (util/mutex.hpp) is a CAPABILITY, members it
// protects carry MPAS_GUARDED_BY(mutex_), and internal helpers that assume
// the lock carry MPAS_REQUIRES(mutex_). Under Clang the `thread-safety`
// CI job compiles the tree with -Wthread-safety -Werror, so an unguarded
// access or a helper called without its lock is a build break, not a code
// review comment. Off Clang every macro expands to nothing — GCC builds
// and runtime behavior are unchanged.
//
// The macro set mirrors the canonical mutex.h from the Clang docs
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed so it
// follows the repo's MPAS_ convention and cannot collide with a vendored
// copy of the original.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define MPAS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MPAS_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// A type whose instances can be held: util::Mutex.
#define MPAS_CAPABILITY(x) MPAS_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires in its constructor and releases in its
/// destructor: util::LockGuard, util::UniqueLock.
#define MPAS_SCOPED_CAPABILITY MPAS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define MPAS_GUARDED_BY(x) MPAS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define MPAS_PT_GUARDED_BY(x) MPAS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to already be held by the caller
/// (the `_locked` helper convention).
#define MPAS_REQUIRES(...) \
  MPAS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past its return.
#define MPAS_ACQUIRE(...) \
  MPAS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller held.
#define MPAS_RELEASE(...) \
  MPAS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define MPAS_TRY_ACQUIRE(b, ...) \
  MPAS_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function must be called with the capability *not* held (self-deadlock
/// guard on public entry points that take their own lock).
#define MPAS_EXCLUDES(...) MPAS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (no static tracking).
#define MPAS_ASSERT_CAPABILITY(x) \
  MPAS_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define MPAS_RETURN_CAPABILITY(x) MPAS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model (condition-variable
/// wait internals that release and reacquire through a type-erased
/// BasicLockable). Use sparingly and say why at the use site.
#define MPAS_NO_THREAD_SAFETY_ANALYSIS \
  MPAS_THREAD_ANNOTATION(no_thread_safety_analysis)
