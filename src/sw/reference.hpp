// The "original code": a serial integrator that executes Algorithm 1 (the
// RK-4 loop) kernel by kernel, in program order, with a selectable loop
// variant. With LoopVariant::Irregular it reproduces the structure of the
// original Fortran implementation (edge-order scatter loops) and serves as
// the correctness oracle and the single-core performance baseline. The
// hybrid/dataflow runtimes are validated against it.
#pragma once

#include <memory>

#include "sw/kernels.hpp"

namespace mpas::sw {

/// Classical fourth-order Runge-Kutta coefficients used by MPAS
/// (Algorithm 1): provis = y + a_i*dt*k_i, y' = y + dt * sum b_i k_i.
struct Rk4 {
  static constexpr Real a[3] = {0.5, 0.5, 1.0};
  static constexpr Real b[4] = {1.0 / 6, 1.0 / 3, 1.0 / 3, 1.0 / 6};
  static constexpr int stages = 4;
};

class ReferenceIntegrator {
 public:
  ReferenceIntegrator(const mesh::VoronoiMesh& mesh, SwParams params,
                      LoopVariant variant = LoopVariant::Irregular);

  /// Compute the initial diagnostics/reconstruction for the state already
  /// present in fields() (call after applying a test case).
  void initialize();

  /// Advance one full RK-4 time step (Algorithm 1 body).
  void step();

  void run(int steps);

  [[nodiscard]] FieldStore& fields() { return fields_; }
  [[nodiscard]] const FieldStore& fields() const { return fields_; }
  [[nodiscard]] const SwParams& params() const { return params_; }
  [[nodiscard]] LoopVariant variant() const { return variant_; }
  [[nodiscard]] std::int64_t steps_taken() const { return steps_taken_; }

 private:
  void compute_tend(FieldId h_in, FieldId u_in);
  void compute_solve_diagnostics(FieldId h_in, FieldId u_in);
  void mpas_reconstruct(FieldId u_in);

  const mesh::VoronoiMesh& mesh_;
  SwParams params_;
  LoopVariant variant_;
  FieldStore fields_;
  std::int64_t steps_taken_ = 0;
};

}  // namespace mpas::sw
