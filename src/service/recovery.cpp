#include "service/recovery.hpp"

#include <filesystem>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/durable/store.hpp"
#include "service/journal.hpp"
#include "service/session_manager.hpp"
#include "util/logging.hpp"

namespace mpas::service {

RecoveryManager::RecoveryManager(DurabilityPolicy policy,
                                 SessionJournal* journal)
    : policy_(std::move(policy)), journal_(journal) {}

std::vector<RecoveryOutcome> RecoveryManager::recover(SessionManager& manager) {
  std::vector<RecoveryOutcome> outcomes;
  if (!policy_.enabled()) return outcomes;
  const JournalReplay replay = replay_journal(policy_.journal_path());
  const auto incomplete = replay.incomplete();
  if (incomplete.empty()) return outcomes;
  MPAS_LOG_INFO << "recovery: " << incomplete.size()
                << " incomplete session(s) in " << policy_.journal_path();

  for (const JournalSession& dead : incomplete) {
    RecoveryOutcome outcome;
    outcome.old_id = dead.id;
    outcome.old_epoch = dead.epoch;

    // The chain root: a session that was itself a recovery inherits its
    // predecessor's directory, so the newest generation is always here.
    ResumeState resume;
    resume.from_id = dead.recovered_from != 0 ? dead.recovered_from : dead.id;
    resume.from_epoch =
        dead.recovered_from != 0 ? dead.recovered_from_epoch : dead.epoch;
    const std::string chain_dir =
        policy_.session_dir(resume.from_epoch, resume.from_id);

    if (std::filesystem::exists(chain_dir)) {
      resilience::durable::DurableStore store(
          {chain_dir, policy_.keep, nullptr});
      if (auto loaded = store.load_latest()) {
        resume.step = loaded->image.step;
        resume.expect_hash = loaded->image.user_tag;
        resume.generation = loaded->generation;
        resume.image = std::move(loaded->image);
        outcome.fallbacks = loaded->fallbacks;
      }
    }
    outcome.resumed_from_step = resume.step;

    SessionRequest request = dead.request;
    request.tenant = dead.tenant;
    // A resumed trajectory is only bitwise-continuable at the fidelity it
    // was checkpointed at: never let admission degrade it further.
    request.allow_degraded = false;

    outcome.new_id = manager.submit_recovered(request, std::move(resume));
    const SessionResult result = manager.result(outcome.new_id);
    outcome.readmitted = result.state != SessionState::Rejected &&
                         result.state != SessionState::Shed;
    if (outcome.readmitted) {
      // Mark the dead session re-admitted so the NEXT restart recovers the
      // new session instead of double-running this one. A refusal leaves
      // the journal untouched: the session stays incomplete and is retried
      // at the next restart.
      if (journal_ != nullptr)
        journal_->append(
            "readmitted", dead.tenant, dead.id,
            obs::trace_arg("of_epoch",
                           static_cast<std::int64_t>(dead.epoch)) +
                "," + obs::trace_arg("as", static_cast<std::int64_t>(
                                               outcome.new_id)));
      obs::MetricsRegistry::global()
          .counter("resilience.durable.recoveries")
          .add(1);
      MPAS_TRACE_INSTANT_ARGS(
          "durable:recover",
          obs::trace_arg("old_id", outcome.old_id) + "," +
              obs::trace_arg("new_id", outcome.new_id) + "," +
              obs::trace_arg("from_step", outcome.resumed_from_step));
      MPAS_LOG_INFO << "recovery: session " << dead.id << " (epoch "
                    << dead.epoch << ") re-admitted as " << outcome.new_id
                    << ", resuming from step "
                    << (outcome.resumed_from_step < 0
                            ? 0
                            : outcome.resumed_from_step);
    } else {
      MPAS_LOG_WARN << "recovery: session " << dead.id
                    << " refused re-admission (" << result.reason
                    << "); will retry at next restart";
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace mpas::service
