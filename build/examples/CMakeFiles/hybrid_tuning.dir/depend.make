# Empty dependencies file for hybrid_tuning.
# This may be replaced when dependencies are built.
