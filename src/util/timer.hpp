// Wall-clock timing plus a named-section statistics accumulator.
//
// Real (measured) times are used for the functional runs; the performance
// figures of the paper are regenerated from the machine model (see
// src/machine). Keeping both lets EXPERIMENTS.md report measured-vs-modeled.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace mpas {

class WallTimer {
 public:
  WallTimer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates per-section timing statistics (count / total / min / max).
class TimingStats {
 public:
  void add(const std::string& section, double seconds);

  struct Entry {
    std::size_t count = 0;
    double total = 0;
    double min = 0;
    double max = 0;
    [[nodiscard]] double mean() const { return count ? total / count : 0; }
  };

  [[nodiscard]] const Entry* find(const std::string& section) const;
  [[nodiscard]] const std::map<std::string, Entry>& entries() const {
    return entries_;
  }
  void clear() { entries_.clear(); }

  /// Render a human-readable report, sections sorted by total time.
  [[nodiscard]] std::string report() const;

 private:
  std::map<std::string, Entry> entries_;
};

/// RAII section timer: adds the elapsed time to a TimingStats on destruction.
class ScopedTimer {
 public:
  ScopedTimer(TimingStats& stats, std::string section)
      : stats_(stats), section_(std::move(section)) {}
  ~ScopedTimer() { stats_.add(section_, timer_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimingStats& stats_;
  std::string section_;
  WallTimer timer_;
};

}  // namespace mpas
