// Spherical triangular grids: the Delaunay side of the SCVT dual pair.
//
// The paper's quasi-uniform SCVT meshes have exactly 10*4^k + 2 generators
// (40962, 163842, 655362, 2621442 for k = 6..9), i.e. they are icosahedral-
// class meshes. We therefore build the Delaunay triangulation by recursive
// midpoint subdivision of the icosahedron, optionally followed by Lloyd
// iterations that move each generator to the centroid of its Voronoi region
// (the defining property of a *centroidal* Voronoi tessellation).
#pragma once

#include <array>
#include <vector>

#include "util/types.hpp"
#include "util/vec3.hpp"

namespace mpas::mesh {

/// A triangulation of the unit sphere. `points` are the Voronoi generators
/// (future cell centers); each triangle is a future Voronoi-mesh vertex.
struct TriMesh {
  std::vector<Vec3> points;
  std::vector<std::array<Index, 3>> triangles;  // CCW seen from outside

  [[nodiscard]] Index num_points() const {
    return static_cast<Index>(points.size());
  }
  [[nodiscard]] Index num_triangles() const {
    return static_cast<Index>(triangles.size());
  }
};

/// The regular icosahedron inscribed in the unit sphere (12 points,
/// 20 triangles), oriented with two antipodal points on the z axis.
TriMesh make_icosahedron();

/// One 4-to-1 midpoint subdivision step: every triangle splits into four,
/// new points are arc midpoints projected back to the sphere.
TriMesh subdivide(const TriMesh& mesh);

/// `level` subdivision steps applied to the icosahedron:
/// 10*4^level + 2 points, 20*4^level triangles.
TriMesh make_icosahedral_grid(int level);

/// Lloyd (SCVT) relaxation: iteratively moves each generator to the
/// area-weighted centroid of its Voronoi region (computed from the current
/// dual triangulation's circumcenters) and re-projects to the sphere.
/// Topology is kept fixed, which is valid for the near-uniform icosahedral
/// starting point. Returns the max generator displacement of the last sweep.
Real scvt_relax(TriMesh& mesh, int iterations);

/// Expected sizes for a level-k icosahedral grid.
constexpr Index icosahedral_cell_count(int level) {
  Index n = 10;
  for (int i = 0; i < level; ++i) n *= 4;
  return n + 2;
}
constexpr Index icosahedral_vertex_count(int level) {
  Index n = 20;
  for (int i = 0; i < level; ++i) n *= 4;
  return n;
}
constexpr Index icosahedral_edge_count(int level) {
  Index n = 30;
  for (int i = 0; i < level; ++i) n *= 4;
  return n;
}

}  // namespace mpas::mesh
