#include "resilience/envelope.hpp"

#include <cstring>

namespace mpas::resilience {

namespace {

constexpr std::uint64_t kMagic = 0x4D504153ull;  // "MPAS"
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

Real encode_word(std::uint64_t v) {
  Real r;
  static_assert(sizeof(Real) == sizeof(std::uint64_t));
  std::memcpy(&r, &v, sizeof(r));
  return r;
}

std::uint64_t decode_word(Real r) {
  std::uint64_t v;
  std::memcpy(&v, &r, sizeof(v));
  return v;
}

}  // namespace

std::uint64_t checksum(std::uint64_t seq, const Real* data, std::size_t n) {
  std::uint64_t h = kFnvOffset ^ seq;
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n * sizeof(Real); ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

std::vector<Real> seal(std::uint64_t seq, std::vector<Real> payload) {
  const std::size_t n = payload.size();
  std::vector<Real> raw;
  raw.reserve(kEnvelopeWords + n);
  raw.push_back(encode_word((kMagic << 32) | static_cast<std::uint32_t>(n)));
  raw.push_back(encode_word(seq));
  raw.push_back(encode_word(checksum(seq, payload.data(), n)));
  raw.insert(raw.end(), payload.begin(), payload.end());
  return raw;
}

std::optional<Opened> open(std::vector<Real> raw) {
  if (raw.size() < kEnvelopeWords) return std::nullopt;
  const std::uint64_t head = decode_word(raw[0]);
  if ((head >> 32) != kMagic) return std::nullopt;
  const std::size_t n = static_cast<std::uint32_t>(head);
  if (raw.size() != kEnvelopeWords + n) return std::nullopt;
  const std::uint64_t seq = decode_word(raw[1]);
  const std::uint64_t sum = decode_word(raw[2]);
  if (checksum(seq, raw.data() + kEnvelopeWords, n) != sum)
    return std::nullopt;
  Opened out;
  out.seq = seq;
  out.payload.assign(raw.begin() + kEnvelopeWords, raw.end());
  return out;
}

}  // namespace mpas::resilience
