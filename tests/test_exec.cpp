// Tests for the execution substrate: thread pool / parallel_for semantics
// and the offload residency runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "exec/offload.hpp"
#include "exec/thread_pool.hpp"
#include "util/error.hpp"

namespace mpas::exec {
namespace {

TEST(ThreadPool, InlineModeRunsOnCaller) {
  ThreadPool pool(0);
  std::vector<int> data(1000, 0);
  pool.parallel_for(1000, [&](Index b, Index e) {
    for (Index i = b; i < e; ++i) data[i] = 1;
  });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), 1000);
}

TEST(ThreadPool, CoversRangeExactlyOnceStatic) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(10000, [&](Index b, Index e) {
    for (Index i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, CoversRangeExactlyOnceDynamic) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(9999);
  pool.parallel_for(
      9999,
      [&](Index b, Index e) {
        for (Index i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      LoopSchedule::Dynamic, 128);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 200; ++round)
    pool.parallel_for(100, [&](Index b, Index e) {
      for (Index i = b; i < e; ++i) sum.fetch_add(i);
    });
  EXPECT_EQ(sum.load(), 200L * (99 * 100 / 2));
  EXPECT_EQ(pool.regions_opened(), 200u);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](Index b, Index) {
                                   if (b == 0) throw Error("boom");
                                 }),
               Error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](Index b, Index e) { count += e - b; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](Index, Index) { touched = true; });
  EXPECT_FALSE(touched);
}

class OffloadTest : public ::testing::Test {
 protected:
  OffloadTest()
      : rt(machine::TransferLink{}, TransferPolicy::ResidentMesh,
           std::size_t{8} * 1024 * 1024 * 1024) {
    mesh_buf = rt.register_buffer("mesh", 1000000, BufferKind::MeshData);
    state_buf = rt.register_buffer("h", 8000, BufferKind::ComputeData);
  }
  OffloadRuntime rt;
  BufferId mesh_buf = -1;
  BufferId state_buf = -1;
};

TEST_F(OffloadTest, InitialUploadPushesEverythingOnce) {
  const Real t = rt.initial_upload();
  EXPECT_GT(t, 0);
  EXPECT_EQ(rt.stats().bytes_to_device, 1008000u);
  // Mesh stays resident: re-ensuring costs nothing.
  EXPECT_EQ(rt.ensure_on_device(mesh_buf), 0.0);
  EXPECT_EQ(rt.ensure_on_device(state_buf), 0.0);
}

TEST_F(OffloadTest, HostWriteInvalidatesDeviceCopyOnly) {
  rt.initial_upload();
  rt.mark_written_on_host(state_buf);
  EXPECT_GT(rt.ensure_on_device(state_buf), 0.0);  // must re-upload
  EXPECT_EQ(rt.ensure_on_device(mesh_buf), 0.0);   // mesh untouched
}

TEST_F(OffloadTest, DeviceWriteRequiresDownloadBeforeHostRead) {
  rt.initial_upload();
  rt.mark_written_on_device(state_buf);
  EXPECT_GT(rt.ensure_on_host(state_buf), 0.0);
  EXPECT_EQ(rt.ensure_on_host(state_buf), 0.0);  // now valid both sides
}

TEST_F(OffloadTest, MeshBuffersMustNotBeWritten) {
  EXPECT_THROW(rt.mark_written_on_device(mesh_buf), Error);
  EXPECT_THROW(rt.mark_written_on_host(mesh_buf), Error);
}

TEST_F(OffloadTest, DeviceMemoryCapacityIsEnforced) {
  OffloadRuntime small(machine::TransferLink{}, TransferPolicy::ResidentMesh,
                       1024);
  small.register_buffer("fits", 1000, BufferKind::ComputeData);
  EXPECT_THROW(small.register_buffer("too-big", 100, BufferKind::ComputeData),
               Error);
}

TEST_F(OffloadTest, OversubscriptionLeavesRuntimeUsable) {
  OffloadRuntime small(machine::TransferLink{}, TransferPolicy::ResidentMesh,
                       1024);
  const BufferId ok = small.register_buffer("fits", 1000,
                                            BufferKind::ComputeData);
  EXPECT_THROW(small.register_buffer("too-big", 100, BufferKind::ComputeData),
               Error);
  // The rejected registration must not leak into the accounting.
  EXPECT_EQ(small.total_buffer_bytes(), 1000u);
  EXPECT_GT(small.initial_upload(), 0.0);
  EXPECT_EQ(small.ensure_on_device(ok), 0.0);
}

TEST_F(OffloadTest, EndOffloadRegionInvalidatesEverythingUnderOnDemand) {
  OffloadRuntime od(machine::TransferLink{}, TransferPolicy::OnDemand,
                    std::size_t{1} << 30);
  const BufferId mesh = od.register_buffer("mesh", 1000, BufferKind::MeshData);
  const BufferId state = od.register_buffer("h", 500, BufferKind::ComputeData);
  EXPECT_GT(od.ensure_on_device(mesh), 0.0);
  EXPECT_GT(od.ensure_on_device(state), 0.0);
  od.mark_written_on_device(state);
  od.end_offload_region();
  // The region's `out` copy-back downloaded the device-written state...
  EXPECT_EQ(od.stats().bytes_to_host, 500u);
  EXPECT_EQ(od.ensure_on_host(state), 0.0);
  // ...and nothing persisted on the device, mesh included.
  EXPECT_GT(od.ensure_on_device(mesh), 0.0);
  EXPECT_GT(od.ensure_on_device(state), 0.0);
}

TEST_F(OffloadTest, EndOffloadRegionIsANoopUnderResidentMesh) {
  rt.initial_upload();
  const auto before = rt.stats();
  rt.end_offload_region();
  EXPECT_EQ(rt.stats().transfers, before.transfers);
  EXPECT_EQ(rt.ensure_on_device(mesh_buf), 0.0);
  EXPECT_EQ(rt.ensure_on_device(state_buf), 0.0);
}

TEST_F(OffloadTest, ResetStatsClearsCountersButNotResidency) {
  rt.initial_upload();
  ASSERT_GT(rt.stats().transfers, 0u);
  rt.reset_stats();
  EXPECT_EQ(rt.stats().transfers, 0u);
  EXPECT_EQ(rt.stats().bytes_to_device, 0u);
  EXPECT_EQ(rt.stats().modeled_seconds, 0.0);
  // Residency is state, not a statistic: buffers are still on the device.
  EXPECT_EQ(rt.ensure_on_device(mesh_buf), 0.0);
}

TEST_F(OffloadTest, TransferFaultIsRetriedAndAccounted) {
  resilience::FaultInjector inj;
  resilience::FaultSpec fail;
  fail.kind = resilience::FaultKind::TransferFail;
  fail.buffer = state_buf;
  inj.add(fail);
  rt.set_resilience(&inj, resilience::RetryPolicy{});

  const Real t = rt.initial_upload();
  EXPECT_GT(t, 0.0);
  const auto& s = rt.stats();
  EXPECT_EQ(s.transfer_faults, 1u);
  EXPECT_EQ(s.transfer_retries, 1u);
  // Successful-delivery accounting: each buffer counted once...
  EXPECT_EQ(s.bytes_to_device, 1008000u);
  EXPECT_EQ(s.transfers, 2u);
  // ...but the modeled time additionally charges the failed attempt.
  OffloadRuntime clean(machine::TransferLink{}, TransferPolicy::ResidentMesh,
                       std::size_t{8} * 1024 * 1024 * 1024);
  clean.register_buffer("mesh", 1000000, BufferKind::MeshData);
  clean.register_buffer("h", 8000, BufferKind::ComputeData);
  clean.initial_upload();
  EXPECT_GT(s.modeled_seconds, clean.stats().modeled_seconds);
}

TEST_F(OffloadTest, PersistentTransferFaultEscalates) {
  resilience::FaultInjector inj;
  resilience::FaultSpec corrupt;
  corrupt.kind = resilience::FaultKind::TransferCorrupt;
  corrupt.buffer = mesh_buf;
  corrupt.repeat = 100;  // outlives any retry budget
  inj.add(corrupt);
  resilience::RetryPolicy retry;
  retry.max_attempts = 3;
  rt.set_resilience(&inj, retry);
  try {
    rt.initial_upload();
    FAIL() << "expected escalation";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'mesh'"), std::string::npos) << what;
    EXPECT_NE(what.find("on all 3 attempts"), std::string::npos) << what;
  }
  EXPECT_EQ(rt.stats().transfer_faults, 3u);
  EXPECT_EQ(rt.stats().transfer_retries, 2u);
}

TEST_F(OffloadTest, TransferRecoveryDisabledThrowsOnFirstFault) {
  resilience::FaultInjector inj;
  resilience::FaultSpec fail;
  fail.kind = resilience::FaultKind::TransferFail;
  inj.add(fail);
  rt.set_resilience(&inj, resilience::RetryPolicy{}, /*recover=*/false);
  try {
    rt.initial_upload();
    FAIL() << "expected immediate escalation";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("recovery disabled"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(rt.stats().transfer_retries, 0u);
}

TEST(OffloadPolicy, OnDemandMovesMoreBytesThanResident) {
  // The Section IV.A claim: keeping mesh data resident cuts transfer volume.
  // Simulate 10 "steps" where the device kernel reads mesh + state and
  // writes state.
  const std::size_t cap = std::size_t{8} * 1024 * 1024 * 1024;
  for (auto policy : {TransferPolicy::OnDemand, TransferPolicy::ResidentMesh}) {
    OffloadRuntime rt(machine::TransferLink{}, policy, cap);
    const BufferId mesh = rt.register_buffer("mesh", 4000000,
                                             BufferKind::MeshData);
    const BufferId state = rt.register_buffer("state", 1000000,
                                              BufferKind::ComputeData);
    rt.initial_upload();
    for (int step = 0; step < 10; ++step) {
      rt.ensure_on_device(mesh);
      rt.ensure_on_device(state);
      rt.mark_written_on_device(state);
      rt.ensure_on_host(state);
      rt.mark_written_on_host(state);  // host-side half step
      rt.end_offload_region();
    }
    if (policy == TransferPolicy::OnDemand) {
      // `#pragma offload` in/out semantics: mesh + state shipped every
      // region -> 10 x 5 MB up.
      EXPECT_EQ(rt.stats().bytes_to_device, 50000000u);
    } else {
      // One 5 MB initial upload + 9 state refreshes (the first step's
      // state is still valid from the initial upload).
      EXPECT_EQ(rt.stats().bytes_to_device, 14000000u);
      // The paper's Section IV.A claim: transfers reduced by ~4x.
      EXPECT_GT(50000000.0 / 14000000.0, 3.5);
    }
  }
}

}  // namespace
}  // namespace mpas::exec
