file(REMOVE_RECURSE
  "CMakeFiles/test_operator_convergence.dir/test_operator_convergence.cpp.o"
  "CMakeFiles/test_operator_convergence.dir/test_operator_convergence.cpp.o.d"
  "test_operator_convergence"
  "test_operator_convergence.pdb"
  "test_operator_convergence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operator_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
