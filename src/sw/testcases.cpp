#include "sw/testcases.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mpas::sw {

namespace {

using constants::kEarthRadius;
using constants::kGravity;
using constants::kOmega;
using constants::kPi;

/// Williamson TC2: steady nonlinear zonal geostrophic flow (alpha = 0).
/// u = u0 cos(lat); g h = g h0 - (a*Omega*u0 + u0^2/2) sin^2(lat).
class SteadyZonalFlow final : public TestCase {
 public:
  SteadyZonalFlow()
      : u0_(2 * kPi * kEarthRadius / (12.0 * 86400.0)),  // ~38.6 m/s
        gh0_(2.94e4) {}

  [[nodiscard]] std::string name() const override {
    return "TC2 steady zonal geostrophic flow";
  }
  [[nodiscard]] int williamson_number() const override { return 2; }

  [[nodiscard]] Real thickness(Real, Real lat) const override {
    const Real s = std::sin(lat);
    return (gh0_ - (kEarthRadius * kOmega * u0_ + 0.5 * u0_ * u0_) * s * s) /
           kGravity;
  }
  [[nodiscard]] Real zonal_wind(Real, Real lat) const override {
    return u0_ * std::cos(lat);
  }
  [[nodiscard]] bool is_steady_state() const override { return true; }
  [[nodiscard]] Real max_wave_speed() const override {
    return u0_ + std::sqrt(gh0_);
  }

 private:
  Real u0_;
  Real gh0_;
};

/// Williamson TC5: zonal flow over an isolated mountain. Same balanced
/// flow as TC2 with u0 = 20 m/s and h0 = 5960 m, plus a conical mountain
/// of height 2000 m and radius pi/9 centered at (3pi/2, pi/6). The fluid
/// thickness is reduced by the mountain so the initial *total* height
/// stays balanced.
class IsolatedMountain final : public TestCase {
 public:
  static constexpr Real kU0 = 20.0;
  static constexpr Real kH0 = 5960.0;
  static constexpr Real kMountainHeight = 2000.0;
  static constexpr Real kMountainRadius = kPi / 9.0;
  static constexpr Real kCenterLon = 3.0 * kPi / 2.0;
  static constexpr Real kCenterLat = kPi / 6.0;

  [[nodiscard]] std::string name() const override {
    return "TC5 zonal flow over an isolated mountain";
  }
  [[nodiscard]] int williamson_number() const override { return 5; }

  [[nodiscard]] Real bottom(Real lon, Real lat) const override {
    const Real dlon = lon - kCenterLon;
    const Real dlat = lat - kCenterLat;
    const Real r =
        std::min(kMountainRadius, std::sqrt(dlon * dlon + dlat * dlat));
    return kMountainHeight * (1.0 - r / kMountainRadius);
  }

  [[nodiscard]] Real thickness(Real lon, Real lat) const override {
    const Real s = std::sin(lat);
    const Real surface =
        kH0 -
        (kEarthRadius * kOmega * kU0 + 0.5 * kU0 * kU0) * s * s / kGravity;
    return surface - bottom(lon, lat);
  }

  [[nodiscard]] Real zonal_wind(Real, Real lat) const override {
    return kU0 * std::cos(lat);
  }
  [[nodiscard]] Real max_wave_speed() const override {
    return kU0 + std::sqrt(kGravity * kH0);
  }
};

/// Williamson TC6: Rossby-Haurwitz wave with wavenumber R = 4.
class RossbyHaurwitz final : public TestCase {
 public:
  static constexpr Real kW = 7.848e-6;  // omega
  static constexpr Real kK = 7.848e-6;  // K
  static constexpr int kR = 4;
  static constexpr Real kH0 = 8000.0;

  [[nodiscard]] std::string name() const override {
    return "TC6 Rossby-Haurwitz wave (R=4)";
  }
  [[nodiscard]] int williamson_number() const override { return 6; }

  [[nodiscard]] Real thickness(Real lon, Real lat) const override {
    const Real c = std::cos(lat);
    const Real c2 = c * c;
    const Real cR = std::pow(c, kR);
    const Real c2R = cR * cR;
    const Real R = kR;

    const Real A = 0.5 * kW * (2 * kOmega + kW) * c2 +
                   0.25 * kK * kK * c2R *
                       ((R + 1) * c2 + (2 * R * R - R - 2) -
                        2 * R * R / c2);
    const Real B = (2 * (kOmega + kW) * kK) / ((R + 1) * (R + 2)) * cR *
                   ((R * R + 2 * R + 2) - (R + 1) * (R + 1) * c2);
    const Real C = 0.25 * kK * kK * c2R * ((R + 1) * c2 - (R + 2));

    const Real a2 = kEarthRadius * kEarthRadius;
    return kH0 + (a2 / kGravity) *
                     (A + B * std::cos(R * lon) + C * std::cos(2 * R * lon));
  }

  [[nodiscard]] Real zonal_wind(Real lon, Real lat) const override {
    const Real c = std::cos(lat);
    const Real s = std::sin(lat);
    const Real R = kR;
    return kEarthRadius * kW * c +
           kEarthRadius * kK * std::pow(c, R - 1) *
               (R * s * s - c * c) * std::cos(R * lon);
  }

  [[nodiscard]] Real meridional_wind(Real lon, Real lat) const override {
    const Real c = std::cos(lat);
    const Real R = kR;
    return -kEarthRadius * kK * R * std::pow(c, R - 1) * std::sin(lat) *
           std::sin(R * lon);
  }

  [[nodiscard]] Real max_wave_speed() const override {
    return 100.0 + std::sqrt(kGravity * 10500.0);
  }
};

}  // namespace

std::unique_ptr<TestCase> make_test_case(int williamson_number) {
  switch (williamson_number) {
    case 2: return std::make_unique<SteadyZonalFlow>();
    case 5: return std::make_unique<IsolatedMountain>();
    case 6: return std::make_unique<RossbyHaurwitz>();
    default:
      MPAS_FAIL("unsupported Williamson test case " << williamson_number
                                                    << " (have 2, 5, 6)");
  }
}

void apply_initial_conditions(const TestCase& tc,
                              const mesh::VoronoiMesh& mesh,
                              FieldStore& fields) {
  auto h = fields.get(FieldId::H);
  auto b = fields.get(FieldId::Bottom);
  for (Index c = 0; c < mesh.num_cells; ++c) {
    h[c] = tc.thickness(mesh.lon_cell[c], mesh.lat_cell[c]);
    b[c] = tc.bottom(mesh.lon_cell[c], mesh.lat_cell[c]);
    MPAS_CHECK_MSG(h[c] > 0, "non-positive initial thickness at cell " << c);
  }

  auto u = fields.get(FieldId::U);
  for (Index e = 0; e < mesh.num_edges; ++e) {
    const Real lon = mesh.lon_edge[e];
    const Real lat = mesh.lat_edge[e];
    const Vec3 wind = sphere::east_at(mesh.x_edge[e]) * tc.zonal_wind(lon, lat) +
                      sphere::north_at(mesh.x_edge[e]) *
                          tc.meridional_wind(lon, lat);
    u[e] = wind.dot(mesh.edge_normal[e]);
  }
}

Real suggested_time_step(const TestCase& tc, const mesh::VoronoiMesh& mesh,
                         Real cfl) {
  Real dc_min = mesh.dc_edge[0];
  for (Index e = 0; e < mesh.num_edges; ++e)
    dc_min = std::min(dc_min, mesh.dc_edge[e]);
  return cfl * dc_min / tc.max_wave_speed();
}

ErrorNorms cell_error_norms(const mesh::VoronoiMesh& mesh,
                            std::span<const Real> field,
                            std::span<const Real> reference) {
  MPAS_CHECK(field.size() == reference.size());
  MPAS_CHECK(static_cast<Index>(field.size()) == mesh.num_cells);
  Real num1 = 0, den1 = 0, num2 = 0, den2 = 0, numi = 0, deni = 0;
  for (Index c = 0; c < mesh.num_cells; ++c) {
    const Real a = mesh.area_cell[c];
    const Real d = field[c] - reference[c];
    num1 += a * std::abs(d);
    den1 += a * std::abs(reference[c]);
    num2 += a * d * d;
    den2 += a * reference[c] * reference[c];
    numi = std::max(numi, std::abs(d));
    deni = std::max(deni, std::abs(reference[c]));
  }
  ErrorNorms n;
  n.l1 = den1 > 0 ? num1 / den1 : num1;
  n.l2 = den2 > 0 ? std::sqrt(num2 / den2) : std::sqrt(num2);
  n.linf = deni > 0 ? numi / deni : numi;
  return n;
}

}  // namespace mpas::sw
