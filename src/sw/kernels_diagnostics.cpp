// compute_solve_diagnostics kernels. See kernels.hpp for the pattern
// taxonomy and variant semantics.
#include "sw/kernels.hpp"

#include "util/error.hpp"

namespace mpas::sw {

const char* to_string(LoopVariant v) {
  switch (v) {
    case LoopVariant::Irregular: return "irregular";
    case LoopVariant::Refactored: return "refactored";
    case LoopVariant::BranchFree: return "branch-free";
  }
  return "?";
}

void diag_h_edge(const SwContext& ctx, FieldId h_in, Index begin, Index end) {
  const auto& m = ctx.mesh;
  const auto h = ctx.fields.get(h_in);
  auto h_edge = ctx.fields.get(FieldId::HEdge);
  for (Index e = begin; e < end; ++e)
    h_edge[e] = 0.5 * (h[m.cells_on_edge(e, 0)] + h[m.cells_on_edge(e, 1)]);
}

void diag_ke(const SwContext& ctx, FieldId u_in, Index begin, Index end,
             LoopVariant variant) {
  const auto& m = ctx.mesh;
  const auto u = ctx.fields.get(u_in);
  auto ke = ctx.fields.get(FieldId::Ke);

  if (variant == LoopVariant::Irregular) {
    // Original MPAS-style traversal: loop over edges, scatter the edge
    // quadrilateral's energy into both adjacent cells (Algorithm 2 shape).
    for (Index c = 0; c < m.num_cells; ++c) ke[c] = 0;
    for (Index e = 0; e < m.num_edges; ++e) {
      const Real contrib = 0.25 * m.dc_edge[e] * m.dv_edge[e] * u[e] * u[e];
      ke[m.cells_on_edge(e, 0)] += contrib;
      ke[m.cells_on_edge(e, 1)] += contrib;
    }
    for (Index c = 0; c < m.num_cells; ++c) ke[c] /= m.area_cell[c];
    return;
  }

  // Gather form (Algorithm 3/4; ke has no sign, so the two coincide).
  for (Index c = begin; c < end; ++c) {
    Real acc = 0;
    for (Index j = 0; j < m.n_edges_on_cell[c]; ++j) {
      const Index e = m.edges_on_cell(c, j);
      acc += 0.25 * m.dc_edge[e] * m.dv_edge[e] * u[e] * u[e];
    }
    ke[c] = acc / m.area_cell[c];
  }
}

void diag_vorticity(const SwContext& ctx, FieldId u_in, Index begin, Index end,
                    LoopVariant variant) {
  const auto& m = ctx.mesh;
  const auto u = ctx.fields.get(u_in);
  auto vort = ctx.fields.get(FieldId::Vorticity);

  if (variant == LoopVariant::Irregular) {
    // Edge-order scatter of signed circulation into the two end vertices.
    for (Index v = 0; v < m.num_vertices; ++v) vort[v] = 0;
    for (Index e = 0; e < m.num_edges; ++e) {
      const Real circ = m.dc_edge[e] * u[e];
      // vertices_on_edge(e,0) -> (e,1) is the tangent direction; the edge
      // contributes with opposite signs to the circulations of its two
      // vertices. Recover each sign from edge_sign_on_vertex to stay
      // consistent with the gather form.
      for (int k = 0; k < 2; ++k) {
        const Index v = m.vertices_on_edge(e, k);
        for (int j = 0; j < mesh::VoronoiMesh::kVertexDegree; ++j)
          if (m.edges_on_vertex(v, j) == e)
            vort[v] += m.edge_sign_on_vertex(v, j) * circ;
      }
    }
    for (Index v = 0; v < m.num_vertices; ++v) vort[v] /= m.area_triangle[v];
    return;
  }

  if (variant == LoopVariant::Refactored) {
    // Gather with an explicit orientation branch (Algorithm 3 shape):
    // the sign is +1 when walking the dual edge from cells_on_edge(e,0)
    // to (e,1) goes counterclockwise around v.
    for (Index v = begin; v < end; ++v) {
      Real acc = 0;
      for (int j = 0; j < mesh::VoronoiMesh::kVertexDegree; ++j) {
        const Index e = m.edges_on_vertex(v, j);
        if (m.edge_sign_on_vertex(v, j) > 0)
          acc += m.dc_edge[e] * u[e];
        else
          acc -= m.dc_edge[e] * u[e];
      }
      vort[v] = acc / m.area_triangle[v];
    }
    return;
  }

  // Branch-free: multiply by the label matrix (Algorithm 4 shape).
  for (Index v = begin; v < end; ++v) {
    Real acc = 0;
    for (int j = 0; j < mesh::VoronoiMesh::kVertexDegree; ++j) {
      const Index e = m.edges_on_vertex(v, j);
      acc += m.edge_sign_on_vertex(v, j) * m.dc_edge[e] * u[e];
    }
    vort[v] = acc / m.area_triangle[v];
  }
}

void diag_divergence(const SwContext& ctx, FieldId u_in, Index begin,
                     Index end, LoopVariant variant) {
  const auto& m = ctx.mesh;
  const auto u = ctx.fields.get(u_in);
  auto div = ctx.fields.get(FieldId::Divergence);

  if (variant == LoopVariant::Irregular) {
    // Algorithm 2 of the paper, verbatim shape: edge order, Y(cell1) += X,
    // Y(cell2) -= X.
    for (Index c = 0; c < m.num_cells; ++c) div[c] = 0;
    for (Index e = 0; e < m.num_edges; ++e) {
      const Real flux = m.dv_edge[e] * u[e];
      div[m.cells_on_edge(e, 0)] += flux;
      div[m.cells_on_edge(e, 1)] -= flux;
    }
    for (Index c = 0; c < m.num_cells; ++c) div[c] /= m.area_cell[c];
    return;
  }

  if (variant == LoopVariant::Refactored) {
    // Algorithm 3: cell order with the orientation conditional.
    for (Index c = begin; c < end; ++c) {
      Real acc = 0;
      for (Index j = 0; j < m.n_edges_on_cell[c]; ++j) {
        const Index e = m.edges_on_cell(c, j);
        if (m.cells_on_edge(e, 0) == c)
          acc += m.dv_edge[e] * u[e];
        else
          acc -= m.dv_edge[e] * u[e];
      }
      div[c] = acc / m.area_cell[c];
    }
    return;
  }

  // Algorithm 4: branch removed via the label matrix edge_sign_on_cell.
  for (Index c = begin; c < end; ++c) {
    Real acc = 0;
    for (Index j = 0; j < m.n_edges_on_cell[c]; ++j) {
      const Index e = m.edges_on_cell(c, j);
      acc += m.edge_sign_on_cell(c, j) * m.dv_edge[e] * u[e];
    }
    div[c] = acc / m.area_cell[c];
  }
}

void diag_v_tangent(const SwContext& ctx, FieldId u_in, Index begin,
                    Index end) {
  const auto& m = ctx.mesh;
  const auto u = ctx.fields.get(u_in);
  auto v = ctx.fields.get(FieldId::VTangent);
  for (Index e = begin; e < end; ++e) {
    Real acc = 0;
    for (Index j = 0; j < m.n_edges_on_edge[e]; ++j)
      acc += m.weights_on_edge(e, j) * u[m.edges_on_edge(e, j)];
    v[e] = acc;
  }
}

void diag_h_pv_vertex(const SwContext& ctx, FieldId h_in, Index begin,
                      Index end) {
  const auto& m = ctx.mesh;
  const auto h = ctx.fields.get(h_in);
  const auto vort = ctx.fields.get(FieldId::Vorticity);
  auto h_vertex = ctx.fields.get(FieldId::HVertex);
  auto pv_vertex = ctx.fields.get(FieldId::PvVertex);
  for (Index v = begin; v < end; ++v) {
    Real acc = 0;
    for (int j = 0; j < mesh::VoronoiMesh::kVertexDegree; ++j)
      acc += m.kite_areas_on_vertex(v, j) * h[m.cells_on_vertex(v, j)];
    h_vertex[v] = acc / m.area_triangle[v];
    pv_vertex[v] = (m.f_vertex[v] + vort[v]) / h_vertex[v];
  }
}

void diag_pv_cell(const SwContext& ctx, Index begin, Index end) {
  const auto& m = ctx.mesh;
  const auto pv_vertex = ctx.fields.get(FieldId::PvVertex);
  auto pv_cell = ctx.fields.get(FieldId::PvCell);
  for (Index c = begin; c < end; ++c) {
    Real acc = 0;
    for (Index j = 0; j < m.n_edges_on_cell[c]; ++j)
      acc += m.kite_areas_on_cell(c, j) * pv_vertex[m.vertices_on_cell(c, j)];
    pv_cell[c] = acc / m.area_cell[c];
  }
}

void diag_pv_edge(const SwContext& ctx, FieldId u_in, Index begin, Index end) {
  const auto& m = ctx.mesh;
  const auto u = ctx.fields.get(u_in);
  const auto v = ctx.fields.get(FieldId::VTangent);
  const auto pv_vertex = ctx.fields.get(FieldId::PvVertex);
  const auto pv_cell = ctx.fields.get(FieldId::PvCell);
  auto pv_edge = ctx.fields.get(FieldId::PvEdge);
  const Real upwind = ctx.params.apvm_factor * ctx.params.dt;
  for (Index e = begin; e < end; ++e) {
    const Index v0 = m.vertices_on_edge(e, 0);
    const Index v1 = m.vertices_on_edge(e, 1);
    Real pv = 0.5 * (pv_vertex[v0] + pv_vertex[v1]);
    // Anticipated potential vorticity method: upwind along the full
    // velocity vector, q <- q - (dt/2) u . grad(q).
    const Real grad_t = (pv_vertex[v1] - pv_vertex[v0]) / m.dv_edge[e];
    const Real grad_n =
        (pv_cell[m.cells_on_edge(e, 1)] - pv_cell[m.cells_on_edge(e, 0)]) /
        m.dc_edge[e];
    pv -= upwind * (u[e] * grad_n + v[e] * grad_t);
    pv_edge[e] = pv;
  }
}

}  // namespace mpas::sw
