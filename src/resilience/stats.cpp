#include "resilience/stats.hpp"

namespace mpas::resilience {

Table ResilienceStats::to_table() const {
  Table t({"event", "count"});
  const auto row = [&t](const char* name, std::uint64_t n) {
    t.add_row({name, std::to_string(n)});
  };
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (injected.of(kind) > 0)
      t.add_row({std::string("injected ") + resilience::to_string(kind),
                 std::to_string(injected.of(kind))});
  }
  row("messages sent", channel.sent);
  row("messages delivered", channel.delivered);
  row("detected drops", channel.detected_drops);
  row("detected corruptions", channel.detected_corruptions);
  row("stale duplicates discarded", channel.stale_discarded);
  row("retransmits", channel.retransmits);
  row("transfer faults detected", transfer_faults_detected);
  row("transfer retries", transfer_retries);
  row("health checks", health_checks);
  row("poisoned states detected", poisoned_states_detected);
  row("rollbacks", rollbacks);
  row("steps replayed", steps_replayed);
  row("rank stalls", stalls);
  t.add_row({"modeled seconds lost",
             Table::num(modeled_seconds_lost + channel.modeled_seconds_lost)});
  return t;
}

std::string ResilienceStats::to_string() const { return to_table().to_ascii(); }

}  // namespace mpas::resilience
