// The paper's validation scenario (Figure 5): Williamson test case 5 —
// a balanced zonal flow impinging on an isolated conical mountain. The run
// writes the total height field at regular intervals for plotting, and
// compares the original (irregular-loop) code against the pattern-driven
// hybrid execution along the way.
//
// Run:  ./mountain_wave [level=5] [days=2] [snapshots=4] [vtk=true]
#include <cmath>
#include <cstdio>

#include "mesh/mesh_cache.hpp"
#include "sw/invariants.hpp"
#include "sw/model.hpp"
#include "sw/output.hpp"
#include "sw/reference.hpp"
#include "sw/testcases.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace mpas;

namespace {

void write_snapshot(const mesh::VoronoiMesh& mesh, const sw::FieldStore& f,
                    double day) {
  const auto h = f.get(sw::FieldId::H);
  const auto b = f.get(sw::FieldId::Bottom);
  Table t({"lon", "lat", "total_height"});
  const Index stride = std::max<Index>(1, mesh.num_cells / 25000);
  for (Index c = 0; c < mesh.num_cells; c += stride)
    t.add_row({Table::num(mesh.lon_cell[c], 5), Table::num(mesh.lat_cell[c], 5),
               Table::num(h[c] + b[c], 7)});
  char name[64];
  std::snprintf(name, sizeof(name), "tc5_height_day%04.1f.csv", day);
  t.write_csv(name);
  std::printf("  wrote %s\n", name);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int level = static_cast<int>(cfg.get_int("level", 5));
  const Real days = cfg.get_real("days", 2.0);
  const int snapshots = static_cast<int>(cfg.get_int("snapshots", 4));
  const bool vtk = cfg.get_bool("vtk", false);

  const auto mesh = mesh::get_global_mesh(level);
  const auto tc = sw::make_test_case(5);
  sw::SwParams params;
  params.dt = sw::suggested_time_step(*tc, *mesh, 0.5);

  std::printf("%s on %s (%d cells), dt=%.1f s, %.1f days\n",
              tc->name().c_str(), mesh->resolution_label().c_str(),
              mesh->num_cells, params.dt, days);

  // Original serial code and the pattern-driven model side by side.
  sw::ReferenceIntegrator original(*mesh, params, sw::LoopVariant::Irregular);
  sw::apply_initial_conditions(*tc, *mesh, original.fields());
  original.initialize();

  sw::SwModel hybrid(*mesh, params);
  sw::apply_initial_conditions(*tc, *mesh, hybrid.fields());
  hybrid.initialize();

  const sw::Invariants start = compute_invariants(*mesh, hybrid.fields());
  const int total_steps = static_cast<int>(days * 86400.0 / params.dt);
  const int chunk = std::max(1, total_steps / std::max(1, snapshots));

  int done = 0;
  write_snapshot(*mesh, hybrid.fields(), 0.0);
  while (done < total_steps) {
    const int n = std::min(chunk, total_steps - done);
    original.run(n);
    hybrid.run(n);
    done += n;
    const double day = done * params.dt / 86400.0;

    const auto ho = original.fields().get(sw::FieldId::H);
    const auto hh = hybrid.fields().get(sw::FieldId::H);
    Real max_diff = 0;
    for (Index c = 0; c < mesh->num_cells; ++c)
      max_diff = std::max(max_diff, std::abs(ho[c] - hh[c]));
    const sw::Invariants now = compute_invariants(*mesh, hybrid.fields());

    std::printf(
        "day %5.2f: h in [%7.1f, %7.1f] m, |orig-hybrid|max %.2e m, "
        "mass drift %.1e, energy drift %.1e\n",
        day, now.h_min, now.h_max, max_diff, now.mass_drift(start),
        now.energy_drift(start));
    write_snapshot(*mesh, hybrid.fields(), day);
    if (vtk) {
      char name[64];
      std::snprintf(name, sizeof(name), "tc5_day%04.1f.vtk", day);
      sw::write_vtk(name, *mesh, hybrid.fields(),
                    {sw::FieldId::H, sw::FieldId::Bottom, sw::FieldId::Ke,
                     sw::FieldId::ReconZonal, sw::FieldId::ReconMeridional});
      std::printf("  wrote %s (open in ParaView)\n", name);
    }
  }

  std::printf(
      "\nThe mountain excites a train of gravity and Rossby waves; the\n"
      "original and hybrid trajectories agree to accumulation-order\n"
      "rounding (the paper's Figure 5 'difference within machine "
      "precision').\n");
  return 0;
}
