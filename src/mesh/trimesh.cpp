#include "mesh/trimesh.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/error.hpp"

namespace mpas::mesh {

TriMesh make_icosahedron() {
  TriMesh m;
  // 12 vertices: poles plus two staggered rings at latitude +-atan(1/2).
  const Real lat = std::atan(0.5);
  m.points.push_back({0, 0, 1});
  for (int i = 0; i < 5; ++i) {
    const Real lon = 2 * constants::kPi * i / 5;
    m.points.push_back(sphere::from_lon_lat(lon, lat));
  }
  for (int i = 0; i < 5; ++i) {
    const Real lon = 2 * constants::kPi * (i + 0.5) / 5;
    m.points.push_back(sphere::from_lon_lat(lon, -lat));
  }
  m.points.push_back({0, 0, -1});

  auto upper = [](int i) { return 1 + i % 5; };
  auto lower = [](int i) { return 6 + i % 5; };
  for (int i = 0; i < 5; ++i) {
    // Cap around the north pole and the adjacent band.
    m.triangles.push_back({0, upper(i), upper(i + 1)});
    m.triangles.push_back({static_cast<Index>(upper(i)),
                           static_cast<Index>(lower(i)),
                           static_cast<Index>(upper(i + 1))});
    m.triangles.push_back({static_cast<Index>(lower(i)),
                           static_cast<Index>(lower(i + 1)),
                           static_cast<Index>(upper(i + 1))});
    m.triangles.push_back({11, lower(i + 1), lower(i)});
  }

  // Normalize orientation: all triangles CCW when seen from outside,
  // i.e. (b-a)x(c-a) points outward.
  for (auto& t : m.triangles) {
    const Vec3& a = m.points[t[0]];
    const Vec3& b = m.points[t[1]];
    const Vec3& c = m.points[t[2]];
    if ((b - a).cross(c - a).dot(a + b + c) < 0) std::swap(t[1], t[2]);
  }
  return m;
}

namespace {

struct PairHash {
  std::size_t operator()(const std::pair<Index, Index>& p) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.first)) << 32) |
        static_cast<std::uint32_t>(p.second));
  }
};

}  // namespace

TriMesh subdivide(const TriMesh& mesh) {
  TriMesh out;
  out.points = mesh.points;
  out.triangles.reserve(mesh.triangles.size() * 4);

  std::unordered_map<std::pair<Index, Index>, Index, PairHash> midpoint_cache;
  midpoint_cache.reserve(mesh.triangles.size() * 2);

  auto midpoint = [&](Index a, Index b) -> Index {
    const auto key = std::minmax(a, b);
    auto it = midpoint_cache.find(key);
    if (it != midpoint_cache.end()) return it->second;
    const Index id = static_cast<Index>(out.points.size());
    out.points.push_back(sphere::arc_midpoint(mesh.points[a], mesh.points[b]));
    midpoint_cache.emplace(key, id);
    return id;
  };

  for (const auto& t : mesh.triangles) {
    const Index ab = midpoint(t[0], t[1]);
    const Index bc = midpoint(t[1], t[2]);
    const Index ca = midpoint(t[2], t[0]);
    out.triangles.push_back({t[0], ab, ca});
    out.triangles.push_back({t[1], bc, ab});
    out.triangles.push_back({t[2], ca, bc});
    out.triangles.push_back({ab, bc, ca});
  }
  return out;
}

TriMesh make_icosahedral_grid(int level) {
  MPAS_CHECK_MSG(level >= 0 && level <= 12, "subdivision level out of range");
  TriMesh m = make_icosahedron();
  for (int i = 0; i < level; ++i) m = subdivide(m);
  MPAS_CHECK(m.num_points() == icosahedral_cell_count(level));
  MPAS_CHECK(m.num_triangles() == icosahedral_vertex_count(level));
  return m;
}

Real scvt_relax(TriMesh& mesh, int iterations) {
  // Adjacency: triangles around each point (unsorted is fine; the centroid
  // is computed as the area-weighted mean of the Voronoi corner fan, which
  // we evaluate triangle-wise without needing an ordered polygon).
  const Index np = mesh.num_points();
  std::vector<std::vector<Index>> tris_on_point(np);
  for (Index t = 0; t < mesh.num_triangles(); ++t)
    for (Index k = 0; k < 3; ++k)
      tris_on_point[mesh.triangles[t][k]].push_back(t);

  Real last_max_move = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    // Circumcenters of the current triangulation = Voronoi corners.
    std::vector<Vec3> cc(mesh.num_triangles());
    for (Index t = 0; t < mesh.num_triangles(); ++t) {
      const auto& tri = mesh.triangles[t];
      cc[t] = sphere::circumcenter(mesh.points[tri[0]], mesh.points[tri[1]],
                                   mesh.points[tri[2]]);
    }

    last_max_move = 0;
    std::vector<Vec3> new_points(np);
    for (Index p = 0; p < np; ++p) {
      // Approximate the Voronoi-region centroid by the area-weighted mean of
      // the sub-triangles (p, cc_a, cc_b) for all Voronoi corner pairs that
      // share a Delaunay edge through p. Using the fan around p with flat-
      // triangle centroids is accurate for the near-uniform meshes we relax.
      Vec3 acc{0, 0, 0};
      Real total_area = 0;
      for (Index t : tris_on_point[p]) {
        const auto& tri = mesh.triangles[t];
        // The two Delaunay edges of `tri` through p each pair `tri` with a
        // neighbouring triangle; accumulating (p, cc[t], cc[n]) over both
        // covers each fan sub-triangle twice in total over the loop, which
        // cancels in the normalized centroid. Simpler: use the kite
        // (p, cc[t]) weighted by the spherical triangle (p, a, b) area.
        const Vec3& a = mesh.points[tri[0]];
        const Vec3& b = mesh.points[tri[1]];
        const Vec3& c = mesh.points[tri[2]];
        const Real w = sphere::triangle_area(a, b, c) / 3.0;
        acc += cc[t] * w;
        total_area += w;
      }
      MPAS_CHECK(total_area > 0);
      new_points[p] = (acc / total_area).normalized();
      last_max_move =
          std::max(last_max_move, sphere::arc_length(mesh.points[p], new_points[p]));
    }
    mesh.points = std::move(new_points);
  }
  return last_max_move;
}

}  // namespace mpas::mesh
