#include "comm/simworld.hpp"

#include <chrono>
#include <cstring>
#include <sstream>
#include <tuple>

#include "obs/trace.hpp"
#include "resilience/fault_env.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace mpas::comm {

namespace {

void flip_bit(std::vector<Real>& payload, std::uint64_t word,
              std::uint32_t bit) {
  if (payload.empty()) return;
  Real& target = payload[word % payload.size()];
  std::uint64_t raw;
  std::memcpy(&raw, &target, sizeof(raw));
  raw ^= std::uint64_t{1} << bit;
  std::memcpy(&target, &raw, sizeof(raw));
}

}  // namespace

SimWorld::SimWorld(int num_ranks) : num_ranks_(num_ranks) {
  MPAS_CHECK(num_ranks >= 1);
  depth_gauge_ = &obs::MetricsRegistry::global().gauge("simworld.queue_depth");
  // An MPAS_FAULT campaign attaches automatically so any fabric picks up
  // the environment's faults without code changes; a later explicit
  // set_fault_injector call overrides (or detaches with nullptr).
  injector_ = resilience::env_fault_injector();
}

void SimWorld::publish_depth_locked() {
  depth_gauge_->set(static_cast<double>(in_flight_));
  MPAS_TRACE_COUNTER("simworld.queue_depth", static_cast<double>(in_flight_));
}

void SimWorld::set_fault_injector(resilience::FaultInjector* injector) {
  util::LockGuard lock(mutex_);
  injector_ = injector;
}

void SimWorld::enqueue_locked(const Key& key, std::vector<Real> payload) {
  stats_.messages += 1;
  stats_.bytes += payload.size() * sizeof(Real);
  queues_[key].push_back(std::move(payload));
  in_flight_ += 1;
  publish_depth_locked();
}

void SimWorld::flush_delayed_locked(const Key& key) {
  const auto it = delayed_.find(key);
  if (it == delayed_.end()) return;
  for (auto& payload : it->second) enqueue_locked(key, std::move(payload));
  delayed_.erase(it);
}

void SimWorld::send(int from, int to, int tag, std::vector<Real> payload) {
  MPAS_CHECK(from >= 0 && from < num_ranks_);
  MPAS_CHECK(to >= 0 && to < num_ranks_);
  MPAS_CHECK_MSG(from != to, "self-send (rank " << from << ")");
  const Key key{from, to, tag};
  bool drop = false, delay = false;
  {
    util::LockGuard lock(mutex_);
    if (injector_ != nullptr) {
      for (const auto& fault : injector_->on_message(from, to, tag)) {
        switch (fault.kind) {
          case resilience::FaultKind::MsgDrop: drop = true; break;
          case resilience::FaultKind::MsgDelay: delay = true; break;
          case resilience::FaultKind::MsgCorrupt:
            flip_bit(payload, fault.word, fault.bit);
            break;
          default: break;
        }
      }
    }
    // Any earlier delayed message on this stream is delivered first — it
    // was slow, not lost, and arrives behind the traffic that overtook it.
    flush_delayed_locked(key);
    if (drop) return;  // vanished on the wire, silently
    if (delay) {
      delayed_[key].push_back(std::move(payload));
    } else {
      enqueue_locked(key, std::move(payload));
    }
  }
  cv_.notify_all();
}

std::vector<Real> SimWorld::recv(int to, int from, int tag) {
  auto payload = try_recv(to, from, tag);
  MPAS_CHECK_MSG(payload.has_value(),
                 "recv with no matching message: " << from << " -> " << to
                                                   << " tag " << tag);
  return std::move(*payload);
}

std::optional<std::vector<Real>> SimWorld::try_recv(int to, int from,
                                                    int tag) {
  util::LockGuard lock(mutex_);
  const auto it = queues_.find(Key{from, to, tag});
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  std::vector<Real> payload = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  in_flight_ -= 1;
  publish_depth_locked();
  return payload;
}

std::vector<Real> SimWorld::recv_blocking(int to, int from, int tag,
                                          int timeout_ms) {
  timeout_ms = static_cast<int>(
      resolve_timeout_ms(timeout_ms, "MPAS_RECV_TIMEOUT_MS", 30000));
  const auto started = std::chrono::steady_clock::now();
  const auto deadline = started + std::chrono::milliseconds(timeout_ms);
  util::UniqueLock lock(mutex_);
  const Key key{from, to, tag};
  // Inline predicate loop (not wait_for with a lambda): the thread-safety
  // analysis checks the queue access with mutex_ held.
  bool arrived = false;
  for (;;) {
    const auto it = queues_.find(key);
    if (it != queues_.end() && !it->second.empty()) {
      arrived = true;
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    cv_.wait_until(lock, deadline);
  }
  if (!arrived) {
    const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - started);
    std::ostringstream os;
    os << "recv_blocking timed out waiting for " << from << " -> " << to
       << " tag " << tag << " after " << waited.count()
       << " ms (likely deadlock); pending queues: ";
    if (queues_.empty()) {
      os << "none";
    } else {
      bool first = true;
      for (const auto& [k, q] : queues_) {
        if (!first) os << ", ";
        first = false;
        os << k.from << " -> " << k.to << " tag " << k.tag << " x"
           << q.size();
      }
    }
    MPAS_FAIL(os.str());
  }
  auto it = queues_.find(key);
  std::vector<Real> payload = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  in_flight_ -= 1;
  publish_depth_locked();
  return payload;
}

bool SimWorld::has_pending() const {
  util::LockGuard lock(mutex_);
  return !queues_.empty();
}

std::vector<SimWorld::PendingQueue> SimWorld::pending() const {
  util::LockGuard lock(mutex_);
  std::vector<PendingQueue> out;
  out.reserve(queues_.size());
  for (const auto& [key, queue] : queues_)
    out.push_back({key.from, key.to, key.tag, queue.size()});
  return out;
}

std::string SimWorld::pending_summary() const {
  const auto queues = pending();
  if (queues.empty()) return "none";
  std::ostringstream os;
  bool first = true;
  for (const auto& q : queues) {
    if (!first) os << ", ";
    first = false;
    os << q.from << " -> " << q.to << " tag " << q.tag << " x" << q.depth;
  }
  return os.str();
}

SimWorld::Stats SimWorld::stats() const {
  util::LockGuard lock(mutex_);
  return stats_;
}

void SimWorld::reset_stats() {
  util::LockGuard lock(mutex_);
  stats_ = {};
}

}  // namespace mpas::comm
