# Empty compiler generated dependencies file for mpas_util.
# This may be replaced when dependencies are built.
