// Structural and mimetic invariant checks for VoronoiMesh. `validate()` is
// cheap enough to run after every mesh build/load: it touches each entity a
// constant number of times.
#include <cmath>
#include <random>

#include "mesh/mesh.hpp"
#include "util/error.hpp"

namespace mpas::mesh {

void VoronoiMesh::validate(bool strict) const {
  MPAS_CHECK(num_cells > 0 && num_edges > 0 && num_vertices > 0);

  // Euler characteristic of the sphere: F - E + V = 2 with Voronoi cells as
  // faces and triangle circumcenters as vertices.
  MPAS_CHECK_MSG(num_cells + num_vertices - num_edges == 2,
                 "Euler formula violated: " << num_cells << " cells, "
                                            << num_edges << " edges, "
                                            << num_vertices << " vertices");

  MPAS_CHECK(static_cast<Index>(x_cell.size()) == num_cells);
  MPAS_CHECK(static_cast<Index>(x_edge.size()) == num_edges);
  MPAS_CHECK(static_cast<Index>(x_vertex.size()) == num_vertices);
  MPAS_CHECK(cells_on_edge.rows() == num_edges && cells_on_edge.cols() == 2);
  MPAS_CHECK(vertices_on_edge.rows() == num_edges);
  MPAS_CHECK(edges_on_cell.rows() == num_cells);
  MPAS_CHECK(cells_on_vertex.rows() == num_vertices);

  Index pentagons = 0;
  for (Index c = 0; c < num_cells; ++c) {
    const Index deg = n_edges_on_cell[c];
    MPAS_CHECK_MSG(deg >= 5 && deg <= kMaxEdges, "bad cell degree");
    if (deg == 5) ++pentagons;
    for (Index j = 0; j < deg; ++j) {
      const Index e = edges_on_cell(c, j);
      MPAS_CHECK(e >= 0 && e < num_edges);
      MPAS_CHECK_MSG(cells_on_edge(e, 0) == c || cells_on_edge(e, 1) == c,
                     "edges_on_cell inconsistent with cells_on_edge");
      const Real sign = edge_sign_on_cell(c, j);
      MPAS_CHECK(sign == 1.0 || sign == -1.0);
      MPAS_CHECK_MSG(sign == (cells_on_edge(e, 0) == c ? 1.0 : -1.0),
                     "edge_sign_on_cell does not encode the outward normal");
      // vertices_on_cell(c, j) must be shared by edges j and j+1.
      const Index v = vertices_on_cell(c, j);
      const Index e2 = edges_on_cell(c, (j + 1) % deg);
      auto touches = [&](Index edge, Index vertex) {
        return vertices_on_edge(edge, 0) == vertex ||
               vertices_on_edge(edge, 1) == vertex;
      };
      MPAS_CHECK_MSG(touches(e, v) && touches(e2, v),
                     "vertices_on_cell ordering broken at cell " << c);
    }
  }
  if (strict)
    MPAS_CHECK_MSG(pentagons == 12,
                   "icosahedral sphere must have exactly 12 pentagons, got "
                       << pentagons);

  for (Index e = 0; e < num_edges; ++e) {
    MPAS_CHECK(cells_on_edge(e, 0) != cells_on_edge(e, 1));
    MPAS_CHECK(vertices_on_edge(e, 0) != vertices_on_edge(e, 1));
    MPAS_CHECK(dc_edge[e] > 0 && dv_edge[e] > 0);
    // Tangent convention: vertices_on_edge ordered along r_hat x n_hat.
    const Vec3 dv = x_vertex[vertices_on_edge(e, 1)] -
                    x_vertex[vertices_on_edge(e, 0)];
    MPAS_CHECK_MSG(dv.dot(edge_tangent[e]) > 0, "edge tangent convention");
  }

  for (Index v = 0; v < num_vertices; ++v) {
    MPAS_CHECK(area_triangle[v] > 0);
    for (int j = 0; j < kVertexDegree; ++j) {
      const Index e = edges_on_vertex(v, j);
      const Index ca = cells_on_vertex(v, j);
      const Index cb = cells_on_vertex(v, (j + 1) % 3);
      MPAS_CHECK_MSG((cells_on_edge(e, 0) == ca && cells_on_edge(e, 1) == cb) ||
                         (cells_on_edge(e, 0) == cb && cells_on_edge(e, 1) == ca),
                     "edges_on_vertex ordering broken at vertex " << v);
      MPAS_CHECK(kite_areas_on_vertex(v, j) > 0);
    }
  }

  // Mimetic check: the discrete curl of a discrete gradient vanishes
  // identically. With grad(psi)_e = (psi(c1)-psi(c0))/dcEdge and vorticity
  // zeta_v = (1/A_v) sum_j sign(v,j) * grad_e * dcEdge, the sum telescopes
  // around the triangle, so it must be zero for *any* psi (up to rounding).
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<Real> dist(-1.0, 1.0);
  std::vector<Real> psi(num_cells);
  for (auto& p : psi) p = dist(rng);
  Real max_curl_grad = 0;
  for (Index v = 0; v < num_vertices; ++v) {
    Real circ = 0;
    for (int j = 0; j < kVertexDegree; ++j) {
      const Index e = edges_on_vertex(v, j);
      const Real grad = psi[cells_on_edge(e, 1)] - psi[cells_on_edge(e, 0)];
      circ += edge_sign_on_vertex(v, j) * grad;
    }
    max_curl_grad = std::max(max_curl_grad, std::abs(circ));
  }
  MPAS_CHECK_MSG(max_curl_grad < 1e-12,
                 "curl(grad) not identically zero: " << max_curl_grad
                                                     << " — edge/vertex sign "
                                                        "conventions broken");

  // Total areas must both tile the sphere (kites are exact by construction).
  const Real sphere_area =
      4.0 * constants::kPi * sphere_radius * sphere_radius;
  Real cell_total = 0, tri_total = 0;
  for (Index c = 0; c < num_cells; ++c) {
    MPAS_CHECK(area_cell[c] > 0);
    cell_total += area_cell[c];
  }
  for (Index v = 0; v < num_vertices; ++v) tri_total += area_triangle[v];
  MPAS_CHECK_MSG(std::abs(cell_total / sphere_area - 1.0) < 1e-9,
                 "cell areas do not tile the sphere: " << cell_total << " vs "
                                                       << sphere_area);
  MPAS_CHECK_MSG(std::abs(tri_total / sphere_area - 1.0) < 1e-9,
                 "triangle areas do not tile the sphere");

  if (strict) {
    // Quasi-uniformity: the icosahedral meshes of the paper have bounded
    // spacing variation.
    Real dc_min = dc_edge[0], dc_max = dc_edge[0];
    for (Index e = 0; e < num_edges; ++e) {
      dc_min = std::min(dc_min, dc_edge[e]);
      dc_max = std::max(dc_max, dc_edge[e]);
    }
    MPAS_CHECK_MSG(dc_max / dc_min < 2.5, "mesh not quasi-uniform");
  }
}

}  // namespace mpas::mesh
