// Machine-readable bench reports: one BENCH_<suite>.json per bench binary,
// carrying the suite's metric series (unit, improvement direction,
// measured-vs-modeled kind, raw samples and robust statistics), the ASCII
// tables the binary printed, trace-derived attribution blocks, and the
// environment fingerprint — everything bench_compare needs to answer "did
// this commit make the bench slower" without rerunning the baseline.
//
// The writer emits the schema below; from_json() reads it back through the
// dependency-free obs::json parser, and the round trip is exact (doubles
// are printed with %.17g).
//
//   {
//     "schema_version": 1,
//     "suite": "fig7_hybrid_comparison",
//     "environment": { "git_sha": ..., "compiler": ..., ... },
//     "series": [ { "name": ..., "unit": ..., "kind": "modeled"|"measured",
//                   "direction": "lower"|"higher"|"info",
//                   "samples": [...], "stats": { ... } } ],
//     "tables": [ { "name": ..., "headers": [...], "rows": [[...]] } ],
//     "attributions": [ { "track": ..., "imbalance": ...,
//                         "overlap_efficiency": ..., "lanes": [...],
//                         "per_pattern_us": {...}, "devices": [...] } ]
//   }
#pragma once

#include <string>
#include <vector>

#include "bench_harness/attribution.hpp"
#include "bench_harness/env_fingerprint.hpp"
#include "bench_harness/stats.hpp"
#include "obs/json.hpp"
#include "util/table.hpp"

namespace mpas::bench_harness {

namespace json = obs::json;  // the dependency-free reader parses reports back

inline constexpr int kReportSchemaVersion = 1;

/// How bench_compare should judge a series that moved.
enum class Direction {
  LowerIsBetter,   // times, bytes, overheads
  HigherIsBetter,  // speedups, efficiencies
  Informational,   // presence/structure checked only
};

const char* to_string(Direction d);

/// Provenance of a series: modeled values are deterministic and compared
/// tightly; measured wall times get the wide CI-noise band.
enum class SeriesKind { Modeled, Measured };

const char* to_string(SeriesKind k);

struct MetricSeries {
  std::string name;
  std::string unit;  // "s", "ratio", "MB", ...
  SeriesKind kind = SeriesKind::Modeled;
  Direction direction = Direction::LowerIsBetter;
  std::vector<double> samples;
  SampleStats stats;  // derived from samples by add_* if left default
};

struct TableDump {
  std::string name;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

class BenchReport {
 public:
  BenchReport() = default;
  explicit BenchReport(std::string suite) : suite_(std::move(suite)) {}

  void set_suite(std::string suite) { suite_ = std::move(suite); }
  [[nodiscard]] const std::string& suite() const { return suite_; }

  EnvFingerprint& environment() { return environment_; }
  [[nodiscard]] const EnvFingerprint& environment() const {
    return environment_;
  }

  /// Add a single-sample series (the modeled, deterministic case).
  void add_value(const std::string& name, double value,
                 const std::string& unit,
                 SeriesKind kind = SeriesKind::Modeled,
                 Direction direction = Direction::LowerIsBetter);

  /// Add a repetition series; stats are computed from the samples.
  void add_samples(const std::string& name, std::vector<double> samples,
                   const std::string& unit,
                   SeriesKind kind = SeriesKind::Measured,
                   Direction direction = Direction::LowerIsBetter);

  void add_series(MetricSeries series);
  void add_table(const Table& table, const std::string& name);
  void add_attribution(AttributionReport attribution);

  [[nodiscard]] const std::vector<MetricSeries>& series() const {
    return series_;
  }
  [[nodiscard]] const MetricSeries* find_series(const std::string& name) const;
  [[nodiscard]] const std::vector<TableDump>& tables() const {
    return tables_;
  }
  [[nodiscard]] const std::vector<AttributionReport>& attributions() const {
    return attributions_;
  }

  [[nodiscard]] std::string to_json() const;
  void write_json(const std::string& path) const;

  /// Parse a document the writer produced; throws std::runtime_error on
  /// schema violations (missing keys, wrong types, unknown enum strings).
  static BenchReport from_json(const json::Value& doc);
  static BenchReport read_file(const std::string& path);

 private:
  std::string suite_;
  EnvFingerprint environment_;
  std::vector<MetricSeries> series_;
  std::vector<TableDump> tables_;
  std::vector<AttributionReport> attributions_;
};

}  // namespace mpas::bench_harness
