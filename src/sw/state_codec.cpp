#include "sw/state_codec.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mpas::sw {

namespace {

// All service snapshots are single-rank (the session owns its model); the
// rank slot stays 0 so the format matches the distributed layout.
constexpr int kRank = 0;
constexpr FieldId kPrognostic[] = {FieldId::H, FieldId::U};

}  // namespace

resilience::durable::CheckpointImage snapshot_prognostic(
    const FieldStore& fields, std::int64_t step) {
  resilience::durable::CheckpointImage image;
  image.step = step;
  for (const FieldId id : kPrognostic) {
    resilience::durable::CheckpointSlot slot;
    slot.rank = kRank;
    slot.slot = static_cast<int>(id);
    const auto data = fields.get(id);
    slot.data.assign(data.begin(), data.end());
    image.slots.push_back(std::move(slot));
  }
  return image;
}

void restore_prognostic(const resilience::durable::CheckpointImage& image,
                        FieldStore& fields) {
  for (const FieldId id : kPrognostic) {
    const auto it = std::find_if(
        image.slots.begin(), image.slots.end(), [&](const auto& s) {
          return s.rank == kRank && s.slot == static_cast<int>(id);
        });
    MPAS_CHECK_MSG(it != image.slots.end(),
                   "durable image lacks prognostic field "
                       << field_info(id).name);
    auto out = fields.get(id);
    MPAS_CHECK_MSG(it->data.size() == out.size(),
                   "durable image field " << field_info(id).name << " has "
                                          << it->data.size() << " entries, mesh needs "
                                          << out.size()
                                          << " (different mesh level?)");
    std::copy(it->data.begin(), it->data.end(), out.begin());
  }
}

}  // namespace mpas::sw
