file(REMOVE_RECURSE
  "CMakeFiles/mpas_partition.dir/halo.cpp.o"
  "CMakeFiles/mpas_partition.dir/halo.cpp.o.d"
  "CMakeFiles/mpas_partition.dir/partitioner.cpp.o"
  "CMakeFiles/mpas_partition.dir/partitioner.cpp.o.d"
  "libmpas_partition.a"
  "libmpas_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpas_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
