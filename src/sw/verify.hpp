// The declared-vs-actual verifier for the shallow-water data-flow graphs:
// the runtime half of src/analysis (the static half is
// analysis/graph_check.hpp).
//
//   * verify_pattern_access — replays every pattern body once, serially, on
//     scrambled field data with a FieldAccessTracker attached, and reports
//     any field the body touches or mutates outside its declared
//     input/output sets. A mis-declared set silently corrupts the derived
//     dependency edges — and therefore every hybrid schedule — so this is
//     the contract check that makes the graph trustworthy.
//   * verify_schedule_races — feeds the level-synchronous node-parallel
//     execution order (level barriers + halo syncs, the ordering the
//     executor actually enforces) through the vector-clock RaceDetector
//     with the declared access sets.
//   * verify_sw_graphs — graph-level static checks + both of the above for
//     all three RK graphs.
//
// SwModel runs verify_sw_graphs at construction when MPAS_VERIFY=1 is set
// in the environment and refuses to start on any error-severity finding.
#pragma once

#include "analysis/graph_check.hpp"
#include "sw/model.hpp"

namespace mpas::sw {

/// Replay each node body of `graph` once over its full iteration range and
/// validate the observed accesses against the declared sets. Field
/// contents and the RK coefficients of `ctx` are saved and restored; the
/// replay itself runs on deterministic scrambled data so writes are
/// detectable by value diff. Codes: "undeclared-write" (error),
/// "undeclared-access" (error), "untouched-input" / "untouched-output"
/// (warnings), "no-body" (info).
analysis::Report verify_pattern_access(const core::DataflowGraph& graph,
                                       SwContext& ctx);

/// Model the node-parallel executor's enforced ordering (per-level
/// barriers, halo-exchange tasks) through the happens-before race detector
/// using the declared access sets. Publishes check/violation counts to the
/// global MetricsRegistry.
analysis::Report verify_schedule_races(const core::DataflowGraph& graph);

struct VerifyOptions {
  analysis::CheckOptions graph;        // static-check options (halo budget)
  bool check_access_sets = true;       // requires graphs built with a ctx
  bool check_schedule_races = true;
};

/// Run every checker over the three RK graphs. `ctx` may be null, which
/// skips the access replay (structure-only graphs carry no bodies).
analysis::Report verify_sw_graphs(const SwGraphs& graphs, SwContext* ctx,
                                  const VerifyOptions& options = {});

/// True when the MPAS_VERIFY environment variable is "1" (any other value,
/// or unset, disables verification).
bool verify_mode_enabled();

}  // namespace mpas::sw
