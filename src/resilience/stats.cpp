#include "resilience/stats.hpp"

namespace mpas::resilience {

Table ResilienceStats::to_table() const {
  Table t({"event", "count"});
  const auto row = [&t](const char* name, std::uint64_t n) {
    t.add_row({name, std::to_string(n)});
  };
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (injected.of(kind) > 0)
      t.add_row({std::string("injected ") + resilience::to_string(kind),
                 std::to_string(injected.of(kind))});
  }
  row("messages sent", channel.sent);
  row("messages delivered", channel.delivered);
  row("detected drops", channel.detected_drops);
  row("detected corruptions", channel.detected_corruptions);
  row("stale duplicates discarded", channel.stale_discarded);
  row("retransmits", channel.retransmits);
  row("transfer faults detected", transfer_faults_detected);
  row("transfer retries", transfer_retries);
  row("health checks", health_checks);
  row("poisoned states detected", poisoned_states_detected);
  row("rollbacks", rollbacks);
  row("steps replayed", steps_replayed);
  row("rank stalls", stalls);
  t.add_row({"modeled seconds lost",
             Table::num(modeled_seconds_lost + channel.modeled_seconds_lost)});
  return t;
}

std::string ResilienceStats::to_string() const { return to_table().to_ascii(); }

void ResilienceStats::export_metrics(obs::MetricsRegistry& registry,
                                     const std::string& prefix) const {
  const auto set = [&registry, &prefix](const char* name, double value) {
    registry.gauge(prefix + name).set(value);
  };
  set("resilience.faults_injected", static_cast<double>(injected.total()));
  set("resilience.messages_sent", static_cast<double>(channel.sent));
  set("resilience.messages_delivered", static_cast<double>(channel.delivered));
  set("resilience.detected_drops", static_cast<double>(channel.detected_drops));
  set("resilience.detected_corruptions",
      static_cast<double>(channel.detected_corruptions));
  set("resilience.stale_discarded",
      static_cast<double>(channel.stale_discarded));
  set("resilience.retransmits", static_cast<double>(channel.retransmits));
  set("resilience.transfer_faults_detected",
      static_cast<double>(transfer_faults_detected));
  set("resilience.transfer_retries", static_cast<double>(transfer_retries));
  set("resilience.health_checks", static_cast<double>(health_checks));
  set("resilience.poisoned_states_detected",
      static_cast<double>(poisoned_states_detected));
  set("resilience.rollbacks", static_cast<double>(rollbacks));
  set("resilience.steps_replayed", static_cast<double>(steps_replayed));
  set("resilience.stalls", static_cast<double>(stalls));
  set("resilience.modeled_seconds_lost",
      static_cast<double>(modeled_seconds_lost +
                          channel.modeled_seconds_lost));
}

}  // namespace mpas::resilience
