// Lock-order detector overhead series: the per-lock/unlock-pair cost of
// util::Mutex against a raw std::mutex, dark (hooks disarmed — the state
// every production run is in) and armed (MPAS_LOCK_CHECK=1). Four
// uncontended series plus a two-thread contended counter:
//
//   raw_pair        std::lock_guard<std::mutex> — the floor
//   dark_pair       util::LockGuard, hooks disarmed (one relaxed load +
//                   predicted branch per op; the <1% budget over raw is
//                   asserted by tests/test_lockorder.cpp)
//   armed_pair      hooks installed, no outer lock held — the hook fast
//                   path (thread-local push/pop, no graph mutex)
//   armed_nested    hooks installed, inner lock taken under an outer one —
//                   the full path through the registry's graph mutex on
//                   every acquisition (the edge is already known, so no
//                   publishing)
//   contended_*     two threads incrementing one guarded counter, dark vs
//                   armed — what MPAS_LOCK_CHECK=1 costs a soak's hottest
//                   lock
//
// Measured series with a committed baseline (bench/baselines/
// BENCH_lockorder.json), gated by bench_compare's wide measured band.
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "analysis/lock_order.hpp"
#include "bench_common.hpp"
#include "util/config.hpp"
#include "util/mutex.hpp"
#include "util/timer.hpp"

using namespace mpas;

namespace {

template <typename Fn>
double per_op_ns(int ops, Fn&& fn) {
  WallTimer timer;
  for (int i = 0; i < ops; ++i) fn();
  return timer.seconds() / ops * 1e9;
}

template <typename Fn>
double contended_ns(int ops, int threads, Fn&& fn) {
  const int per_thread = ops / threads;
  WallTimer timer;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t)
    workers.emplace_back([&fn, per_thread] {
      for (int i = 0; i < per_thread; ++i) fn();
    });
  for (auto& w : workers) w.join();
  return timer.seconds() / (per_thread * threads) * 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = bench::bench_init(argc, argv, "lockorder");
  const int ops = static_cast<int>(cfg.get_int("ops", 400000));
  const int threads = static_cast<int>(cfg.get_int("threads", 2));
  bench::add_info("ops", static_cast<Real>(ops), "count");
  bench::add_info("threads", static_cast<Real>(threads), "count");

  const bench_harness::BenchRunner runner;
  std::printf("== Lock-order detector overhead (%d ops per repeat) ==\n\n",
              ops);

  std::uint64_t sink = 0;

  std::mutex raw_mutex;
  const auto raw = runner.collect([&] {
    return per_op_ns(ops, [&] {
      const std::lock_guard<std::mutex> lock(raw_mutex);
      sink += 1;
    });
  });
  bench::add_measured("raw_pair_ns", raw, "ns");

  util::Mutex inner{"bench.lockorder.inner", 0};
  util::Mutex outer{"bench.lockorder.outer", 0};
  const auto dark = runner.collect([&] {
    return per_op_ns(ops, [&] {
      const util::LockGuard lock(inner);
      sink += 1;
    });
  });
  bench::add_measured("dark_pair_ns", dark, "ns");

  auto& registry = analysis::LockOrderRegistry::instance();
  registry.install();

  const auto armed = runner.collect([&] {
    return per_op_ns(ops, [&] {
      const util::LockGuard lock(inner);
      sink += 1;
    });
  });
  bench::add_measured("armed_pair_ns", armed, "ns");

  const auto nested = runner.collect([&] {
    const util::LockGuard hold(outer);
    return per_op_ns(ops, [&] {
      const util::LockGuard lock(inner);
      sink += 1;
    });
  });
  bench::add_measured("armed_nested_ns", nested, "ns");

  registry.uninstall();
  const auto contended_dark = runner.collect([&] {
    return contended_ns(ops, threads, [&] {
      const util::LockGuard lock(inner);
      sink += 1;
    });
  });
  bench::add_measured("contended_dark_ns", contended_dark, "ns");

  registry.install();
  const auto contended_armed = runner.collect([&] {
    return contended_ns(ops, threads, [&] {
      const util::LockGuard lock(inner);
      sink += 1;
    });
  });
  bench::add_measured("contended_armed_ns", contended_armed, "ns");

  registry.uninstall();
  registry.reset();
  if (sink == 0) std::printf("(unreachable: empty critical sections)\n");

  Table t({"series", "ns/pair p50", "ns/pair p75", "stable"});
  const auto row = [&t](const char* name,
                        const bench_harness::RunResult& run) {
    t.add_row({name, Table::fixed(run.stats.median, 1),
               Table::fixed(run.stats.p75, 1), run.stable ? "yes" : "no"});
  };
  row("raw_pair", raw);
  row("dark_pair", dark);
  row("armed_pair", armed);
  row("armed_nested", nested);
  row("contended_dark", contended_dark);
  row("contended_armed", contended_armed);
  bench::emit(t, "lock_contention");
  return 0;
}
