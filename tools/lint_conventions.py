#!/usr/bin/env python3
"""Project convention lint, run in CI (tools/lint_conventions.py [root]).

Checks, over src/, tests/, examples/, and bench/:

  1. every header uses `#pragma once`;
  2. no `using namespace` at any scope inside a header (headers leak into
     every consumer's scope);
  3. no raw `new` / `delete` in src/ — containers and smart pointers own
     memory (explicitly allowlisted: the aligned allocator, which must call
     `::operator new`, and the two intentionally-leaky observability
     singletons);
  4. project headers are included by their src/-relative path with quotes
     (`#include "core/dataflow.hpp"`), never by a bare filename or a
     relative `../` path, so every include names one unambiguous file.

Exit code = number of violations.
"""
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "tests", "examples", "bench")
HEADER_SUFFIXES = {".hpp", ".h"}
SOURCE_SUFFIXES = {".hpp", ".h", ".cpp", ".cc"}

# path (relative to repo root) -> reason raw new/delete is allowed there.
RAW_NEW_ALLOWLIST = {
    "src/util/aligned_vector.hpp": "aligned allocator wraps ::operator new",
    "src/obs/metrics.cpp": "intentionally leaky process-lifetime singleton",
    "src/obs/trace.cpp": "intentionally leaky process-lifetime singleton",
    "src/obs/profiling/perf_profiler.cpp":
        "intentionally leaky process-lifetime singleton",
    "src/analysis/lock_order.cpp":
        "intentionally leaky process-lifetime singleton",
}

RAW_NEW_RE = re.compile(r"(?<![:\w])(new|delete)\b(?!\s*\()")
DELETED_MEMBER_RE = re.compile(r"=\s*delete\s*(\[\s*\])?\s*;")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
COMMENT_RE = re.compile(r"//.*$")


def strip_comment(line: str) -> str:
    return COMMENT_RE.sub("", line)


def lint_file(root: Path, path: Path, project_headers: set) -> list:
    rel = path.relative_to(root).as_posix()
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    problems = []

    if path.suffix in HEADER_SUFFIXES and "#pragma once" not in text:
        problems.append(f"{rel}: header is missing '#pragma once'")

    for n, line in enumerate(lines, 1):
        code = strip_comment(line)

        if path.suffix in HEADER_SUFFIXES and USING_NAMESPACE_RE.match(code):
            problems.append(
                f"{rel}:{n}: 'using namespace' in a header leaks into every "
                "consumer")

        if (rel.startswith("src/") and rel not in RAW_NEW_ALLOWLIST
                and RAW_NEW_RE.search(DELETED_MEMBER_RE.sub(";", code))):
            problems.append(
                f"{rel}:{n}: raw new/delete in src/ — use containers or "
                "smart pointers")

        m = INCLUDE_RE.match(code)
        if m:
            inc = m.group(1)
            if inc.startswith(("../", "./")):
                problems.append(
                    f"{rel}:{n}: relative include \"{inc}\" — include "
                    "project headers by their src/-relative path")
            elif "/" not in inc and inc in project_headers:
                problems.append(
                    f"{rel}:{n}: bare include \"{inc}\" is ambiguous — use "
                    "the src/-relative path")
            elif "/" in inc and not (root / "src" / inc).exists():
                problems.append(
                    f"{rel}:{n}: include \"{inc}\" does not resolve under "
                    "src/ — quoted includes are for project headers")
    return problems


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    root = root.resolve()

    project_headers = {
        p.name for p in (root / "src").rglob("*")
        if p.suffix in HEADER_SUFFIXES
    }

    problems = []
    for top in SOURCE_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES:
                problems.extend(lint_file(root, path, project_headers))

    for p in problems:
        print(p)
    print(f"lint_conventions: {len(problems)} violation(s)")
    return min(len(problems), 255)


if __name__ == "__main__":
    sys.exit(main())
