// MPAS_FAULT: arm a seeded fault campaign on any binary, no code changes.
//
// Every SimWorld and OffloadRuntime attaches the process-wide injector
// parsed from the MPAS_FAULT environment variable (when set), the same
// zero-code-change idiom as MPAS_TRACE / MPAS_METRICS / MPAS_VERIFY. An
// explicit set_fault_injector / set_resilience call overrides the ambient
// injector — which is how a reference run inside a fault-injection driver
// opts back out.
//
// Grammar (entries separated by ';', fields by whitespace):
//
//   MPAS_FAULT  ::= entry (';' entry)*
//   entry       ::= 'seed=' uint | fault
//   fault       ::= kind ['@' uint] (key '=' value)*
//   kind        ::= drop | corrupt | delay | stall | sdc
//                 | transfer-fail | transfer-corrupt
//                 | torn-write | short-write | bit-rot | storage-crash
//   key         ::= from | to | tag | buffer | rank | step | op | repeat
//                 | p | word | bit | ms
//
// '@N' is the counted-mode at_event (0-based N-th matching event); 'p' is
// the probabilistic-mode per-event probability; 'ms' is the RankStall cost
// in milliseconds; 'op' is the int(StorageOp) durability-syscall filter for
// the storage kinds. Unset keys keep FaultSpec defaults (wildcard filters).
//
//   MPAS_FAULT="seed=7; drop@5 from=0 to=1; corrupt@17 word=2; delay@29"
//   MPAS_FAULT="stall rank=2 step=1 ms=5; sdc rank=1 step=3"
//   MPAS_FAULT="transfer-corrupt p=0.01"
//   MPAS_FAULT="torn-write@3; storage-crash@0 op=4"
#pragma once

#include <string>
#include <vector>

#include "resilience/fault.hpp"

namespace mpas::resilience {

/// A parsed MPAS_FAULT campaign.
struct FaultCampaign {
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;  // FaultInjector default
  std::vector<FaultSpec> faults;
};

/// Parse a campaign spec. Throws mpas::Error on malformed input (unknown
/// kind/key, non-numeric value) — the spec is an input and is validated
/// like any other input.
FaultCampaign parse_fault_campaign(const std::string& text);

/// Canonical rendering; parse_fault_campaign(to_string(c)) reproduces `c`
/// exactly (the round-trip proven by tests and examples/fault_injection).
std::string to_string(const FaultCampaign& campaign);

/// Arm `injector` with the campaign's fault schedule (construct the
/// injector with campaign.seed: FaultInjector is pinned in place by its
/// lock, so seeding happens at construction).
void arm_campaign(FaultInjector& injector, const FaultCampaign& campaign);

/// The process-wide injector armed from MPAS_FAULT, or nullptr when the
/// variable is unset or empty. Parsed once per process; a malformed spec
/// throws on first use rather than silently running without faults.
FaultInjector* env_fault_injector();

}  // namespace mpas::resilience
