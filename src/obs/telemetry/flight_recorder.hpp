// Per-session flight recorder: a fixed-size ring buffer of the decisions
// that explain a session's fate — admission verdict with its arithmetic,
// every retry/backoff, health transitions observed while the session ran,
// replan swaps, step-time EWMA excursions, cancellation and deadline
// checks. Recording is O(1) and allocation-free after the ring fills;
// while a session is healthy the recorder costs a mutex and a slot write
// per event and produces no output at all.
//
// The payoff is the dump: on terminal failure, quarantine involvement, or
// MPAS_FLIGHT_DUMP=all, the ring is serialized as one JSON file — the
// black box that makes "why did session 7 die at step 4000?" answerable
// after the process has moved on. FlightDumpPolicy holds the env grammar:
//
//   MPAS_FLIGHT_DUMP unset     -> disarmed (no dumps ever)
//   MPAS_FLIGHT_DUMP=all       -> dump every session into ./flight_dumps
//   MPAS_FLIGHT_DUMP=all:<dir> -> dump every session into <dir>
//   MPAS_FLIGHT_DUMP=<dir>     -> dump failures/quarantines into <dir>
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/lock_ranks.hpp"
#include "util/mutex.hpp"

namespace mpas::obs::telemetry {

enum class FlightKind : int {
  Admission = 0,        // verdict + cost arithmetic
  Dispatch,             // session left the queue for a worker
  Retry,                // transient fault -> backoff, another attempt
  HealthTransition,     // entity state change seen by this session
  Replan,               // schedule swap after quarantine/recovery
  StepExcursion,        // step modeled time left the EWMA band
  DriftAlarm,           // measured diverged from the machine model
  DeadlineCheck,        // modeled budget exceeded at a step boundary
  Cancel,               // cooperative cancellation honored
  Recovery,             // crash recovery: durable restore / divergence audit
  Terminal,             // final state + reason
};

const char* to_string(FlightKind kind);

struct FlightEvent {
  FlightKind kind = FlightKind::Admission;
  long step = -1;        // -1 = not tied to a step
  double a = 0;          // kind-specific numerics (cost, spent, ratio...)
  double b = 0;
  std::string detail;    // short human-readable context
  double ts_s = 0;       // shared monotonic clock
  std::uint64_t seq = 0; // monotone per-recorder sequence number
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Append one event; overwrites the oldest once the ring is full.
  void record(FlightKind kind, long step, const std::string& detail,
              double a = 0, double b = 0);

  /// Events currently held, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const;
  /// Total events ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// How many held events are of `kind`.
  [[nodiscard]] std::size_t count(FlightKind kind) const;

  /// Serialize the ring as a self-describing JSON document.
  [[nodiscard]] std::string to_json(std::uint64_t session,
                                    const std::string& tenant,
                                    const std::string& trigger) const;
  /// to_json + write; returns false when the file cannot be opened.
  bool dump_to_file(const std::string& path, std::uint64_t session,
                    const std::string& tenant,
                    const std::string& trigger) const;

 private:
  std::size_t capacity_;
  mutable util::Mutex mutex_{"obs.flight_recorder",
                             util::lockrank::kFlightRecorder};
  std::vector<FlightEvent> ring_ MPAS_GUARDED_BY(mutex_);
  std::size_t head_ MPAS_GUARDED_BY(mutex_) = 0;  // next slot once full
  std::uint64_t recorded_ MPAS_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_seq_ MPAS_GUARDED_BY(mutex_) = 0;
};

struct FlightDumpPolicy {
  bool dump_all = false;
  std::string dir;  // empty = disarmed

  [[nodiscard]] bool armed() const { return !dir.empty(); }
  /// True when a session with the given fate should be dumped.
  [[nodiscard]] bool should_dump(bool failed, bool quarantine_involved)
      const {
    return armed() && (dump_all || failed || quarantine_involved);
  }

  /// Parse MPAS_FLIGHT_DUMP per the grammar in the header comment.
  [[nodiscard]] static FlightDumpPolicy from_env();
  [[nodiscard]] static FlightDumpPolicy parse(const std::string& spec);
};

}  // namespace mpas::obs::telemetry
