// Error handling helpers. Following the C++ Core Guidelines (E.2, E.14) we
// throw exceptions derived from std::runtime_error for violated invariants
// that indicate programming or input errors, and reserve assertions for
// conditions that are checked in debug builds only.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mpas {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A failure worth retrying (flaky link, transient launch fault): callers
/// with a retry budget back off and try again; everything else propagates
/// as a plain Error and fails fast.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace mpas

/// Always-on invariant check (input validation, mesh consistency, ...).
#define MPAS_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::mpas::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define MPAS_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream mpas_check_os_;                                     \
      mpas_check_os_ << msg;                                                 \
      ::mpas::detail::throw_check_failure(#expr, __FILE__, __LINE__,         \
                                          mpas_check_os_.str());             \
    }                                                                        \
  } while (0)

#define MPAS_FAIL(msg)                                                       \
  do {                                                                       \
    std::ostringstream mpas_fail_os_;                                        \
    mpas_fail_os_ << msg;                                                    \
    ::mpas::detail::throw_check_failure("failure", __FILE__, __LINE__,       \
                                        mpas_fail_os_.str());                \
  } while (0)
