#include "obs/profiling/hw_counters.hpp"

#include <atomic>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define MPAS_HAS_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#else
#define MPAS_HAS_PERF_EVENT 0
#endif

namespace mpas::obs::profiling {

#if MPAS_HAS_PERF_EVENT

namespace {

int perf_open(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // the leader gates the group
  attr.exclude_kernel = 1;               // works at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          group_fd, /*flags=*/0UL);
  return static_cast<int>(fd);
}

/// Scale a raw group count to its full-time estimate when the kernel
/// multiplexed the group off the PMU part of the time.
std::uint64_t scale_count(std::uint64_t raw, std::uint64_t enabled,
                          std::uint64_t running) {
  if (running == 0 || running >= enabled) return raw;
  const double factor =
      static_cast<double>(enabled) / static_cast<double>(running);
  return static_cast<std::uint64_t>(static_cast<double>(raw) * factor);
}

}  // namespace

bool HwCounterGroup::available() {
  // 0 = unprobed, 1 = yes, 2 = no.
  static std::atomic<int> verdict{0};
  int v = verdict.load(std::memory_order_relaxed);
  if (v == 0) {
    const int fd =
        perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fd >= 0) close(fd);
    v = fd >= 0 ? 1 : 2;
    verdict.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void HwCounterGroup::open_group() {
  fd_leader_ = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd_leader_ < 0) return;
  members_ = 1;
  fd_instructions_ = perf_open(PERF_TYPE_HARDWARE,
                               PERF_COUNT_HW_INSTRUCTIONS, fd_leader_);
  if (fd_instructions_ >= 0) members_ += 1;
  fd_llc_misses_ =
      perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, fd_leader_);
  if (fd_llc_misses_ >= 0) members_ += 1;
  // Frontend/backend stall events are absent on many PMUs; the group is
  // fine without it (stalled_valid = false in the samples).
  fd_stalled_ = perf_open(PERF_TYPE_HARDWARE,
                          PERF_COUNT_HW_STALLED_CYCLES_BACKEND, fd_leader_);
  if (fd_stalled_ >= 0) members_ += 1;
}

void HwCounterGroup::close_group() {
  if (fd_stalled_ >= 0) close(fd_stalled_);
  if (fd_llc_misses_ >= 0) close(fd_llc_misses_);
  if (fd_instructions_ >= 0) close(fd_instructions_);
  if (fd_leader_ >= 0) close(fd_leader_);
  fd_leader_ = fd_instructions_ = fd_llc_misses_ = fd_stalled_ = -1;
  members_ = 0;
}

void HwCounterGroup::start() {
  if (fd_leader_ < 0) return;
  ioctl(fd_leader_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fd_leader_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

HwCounterSample HwCounterGroup::stop() {
  HwCounterSample sample;
  if (fd_leader_ < 0) return sample;
  ioctl(fd_leader_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);

  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  // Values appear in the order the events were opened into the group.
  struct {
    std::uint64_t nr = 0;
    std::uint64_t time_enabled = 0;
    std::uint64_t time_running = 0;
    std::uint64_t values[4] = {0, 0, 0, 0};
  } data;
  const ssize_t got = read(fd_leader_, &data, sizeof(data));
  if (got < 0 || data.nr < 1) return sample;

  int slot = 0;
  auto next = [&]() -> std::uint64_t {
    const std::uint64_t raw =
        slot < static_cast<int>(data.nr) ? data.values[slot] : 0;
    slot += 1;
    return scale_count(raw, data.time_enabled, data.time_running);
  };
  sample.cycles = next();
  if (fd_instructions_ >= 0) sample.instructions = next();
  if (fd_llc_misses_ >= 0) sample.llc_misses = next();
  if (fd_stalled_ >= 0) {
    sample.stalled_cycles = next();
    sample.stalled_valid = true;
  }
  sample.valid = true;
  return sample;
}

#else  // !MPAS_HAS_PERF_EVENT

bool HwCounterGroup::available() { return false; }
void HwCounterGroup::open_group() {}
void HwCounterGroup::close_group() {}
void HwCounterGroup::start() {}
HwCounterSample HwCounterGroup::stop() { return {}; }

#endif  // MPAS_HAS_PERF_EVENT

HwCounterGroup::HwCounterGroup() {
  if (available()) open_group();
}

HwCounterGroup::HwCounterGroup(bool force_fallback) {
  if (!force_fallback && available()) open_group();
}

HwCounterGroup::~HwCounterGroup() { close_group(); }

}  // namespace mpas::obs::profiling
