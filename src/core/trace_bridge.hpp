// Bridge from schedule_sim's modeled TraceEntry lanes to the observability
// layer: a SimResult recorded with SimOptions::record_trace becomes one
// extra Chrome-trace track (host / accel / pcie / network lanes), so a
// single exported file overlays the *predicted* schedule against the
// *measured* spans recorded on track 0.
#pragma once

#include <string>

#include "core/schedule.hpp"
#include "obs/trace.hpp"

namespace mpas::core {

/// Append `result.trace` to `recorder` as a freshly allocated track named
/// `track_name`. Modeled seconds map to trace microseconds times
/// `time_scale` (default 1e6: one modeled second = one displayed second).
/// Returns the allocated track id. Compute entries land on the host/accel
/// lanes and are labeled with the node's graph label; Transfer entries land
/// on the pcie lane; HaloComm entries on the network lane.
int record_modeled_trace(const DataflowGraph& graph, const SimResult& result,
                         obs::TraceRecorder& recorder,
                         const std::string& track_name,
                         double time_scale = 1e6);

}  // namespace mpas::core
