# Empty compiler generated dependencies file for mpas_partition.
# This may be replaced when dependencies are built.
