// Repetition control for bench measurements: warmup repeats that are
// discarded, then measured repeats until the series is stable (relative IQR
// under a target) or the repeat budget is exhausted. Deterministic sources
// (the modeled times most benches report) stabilise at min_repeats with an
// IQR of exactly zero; measured wall times keep repeating until the spread
// settles, so a report's statistics are trustworthy without hand-tuning a
// repeat count per bench.
#pragma once

#include <functional>

#include "bench_harness/stats.hpp"

namespace mpas::bench_harness {

struct RunnerOptions {
  int warmup = 1;            // discarded repeats before measuring
  int min_repeats = 3;       // always measure at least this many
  int max_repeats = 20;      // hard budget
  double stability_rel_iqr = 0.05;  // stop once IQR/|median| <= this

  /// Single-shot preset for expensive runs (multi-minute integrations):
  /// no warmup, one repeat, stability check vacuous.
  [[nodiscard]] static RunnerOptions single_shot() {
    return {0, 1, 1, 1.0};
  }
};

struct RunResult {
  std::vector<double> samples;
  SampleStats stats;
  bool stable = false;  // met the stability target within the budget
  int repeats = 0;
};

class BenchRunner {
 public:
  BenchRunner() = default;
  explicit BenchRunner(RunnerOptions options) : options_(options) {}

  [[nodiscard]] const RunnerOptions& options() const { return options_; }

  /// Wall-time each repeat of `fn` (seconds per repeat).
  [[nodiscard]] RunResult measure(const std::function<void()>& fn) const;

  /// Record the value `fn` returns per repeat (modeled metrics, counters).
  [[nodiscard]] RunResult collect(const std::function<double()>& fn) const;

 private:
  RunnerOptions options_;
};

}  // namespace mpas::bench_harness
