# Empty dependencies file for mpas_machine.
# This may be replaced when dependencies are built.
