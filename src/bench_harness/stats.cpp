#include "bench_harness/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mpas::bench_harness {

namespace {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double SampleStats::relative_iqr() const {
  const double scale = std::abs(median);
  return scale > 0 ? iqr / scale : 0.0;
}

SampleStats SampleStats::from_samples(const std::vector<double>& samples) {
  SampleStats s;
  s.count = static_cast<int>(samples.size());
  if (samples.empty()) return s;

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile_sorted(sorted, 0.5);
  s.p25 = quantile_sorted(sorted, 0.25);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.iqr = s.p75 - s.p25;

  double sum = 0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double sq = 0;
    for (double v : sorted) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.count - 1));
  }

  const double lo_fence = s.p25 - 1.5 * s.iqr;
  const double hi_fence = s.p75 + 1.5 * s.iqr;
  for (double v : sorted)
    if (v < lo_fence || v > hi_fence) ++s.outliers;
  return s;
}

double sample_quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return quantile_sorted(samples, q);
}

}  // namespace mpas::bench_harness
