file(REMOVE_RECURSE
  "CMakeFiles/mpas_mesh.dir/mesh_builder.cpp.o"
  "CMakeFiles/mpas_mesh.dir/mesh_builder.cpp.o.d"
  "CMakeFiles/mpas_mesh.dir/mesh_cache.cpp.o"
  "CMakeFiles/mpas_mesh.dir/mesh_cache.cpp.o.d"
  "CMakeFiles/mpas_mesh.dir/mesh_checks.cpp.o"
  "CMakeFiles/mpas_mesh.dir/mesh_checks.cpp.o.d"
  "CMakeFiles/mpas_mesh.dir/mesh_io.cpp.o"
  "CMakeFiles/mpas_mesh.dir/mesh_io.cpp.o.d"
  "CMakeFiles/mpas_mesh.dir/mesh_quality.cpp.o"
  "CMakeFiles/mpas_mesh.dir/mesh_quality.cpp.o.d"
  "CMakeFiles/mpas_mesh.dir/trimesh.cpp.o"
  "CMakeFiles/mpas_mesh.dir/trimesh.cpp.o.d"
  "CMakeFiles/mpas_mesh.dir/trisk.cpp.o"
  "CMakeFiles/mpas_mesh.dir/trisk.cpp.o.d"
  "libmpas_mesh.a"
  "libmpas_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpas_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
