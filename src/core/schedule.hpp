// Hybrid schedules over the data-flow graph and their discrete-event timing
// simulation on the modeled platform (Table II).
//
// A Schedule assigns each pattern node to the host CPU, the accelerator, or
// both (a range split — the light-yellow "adjustable part" boxes of Figure
// 4(b)). The simulator executes the graph in dependency order on two device
// timelines plus a PCIe-link timeline, inserting transfers whenever data
// crosses devices and charging halo-exchange barriers at the marked sync
// points. Its makespan is the modeled per-substep execution time used by
// the Figure 6-9 benches.
#pragma once

#include "core/dataflow.hpp"
#include "machine/machine_model.hpp"

namespace mpas::core {

enum class DeviceSide : int { Host = 0, Accel = 1, Split = 2 };

const char* to_string(DeviceSide side);

struct Assignment {
  DeviceSide side = DeviceSide::Host;
  Real host_fraction = 1.0;  // only meaningful for Split
};

struct Schedule {
  std::string name;
  std::vector<Assignment> assignments;  // indexed by node id
  VariantChoice host_variant = VariantChoice::BranchFree;
  VariantChoice accel_variant = VariantChoice::BranchFree;
};

struct SimOptions {
  machine::Platform platform;
  machine::OptLevel host_opt = machine::OptLevel::Full;
  machine::OptLevel accel_opt = machine::OptLevel::Full;
  int host_threads = -1;   // -1: full complement
  int accel_threads = -1;

  /// Halo exchange parameters for the marked sync points (0 = single rank,
  /// syncs are free). Bytes are per rank per sync; messages go to
  /// `halo_neighbors` neighbouring ranks.
  std::int64_t halo_bytes_per_sync = 0;
  int halo_neighbors = 0;

  /// Record a per-node execution trace in SimResult (for Gantt rendering).
  bool record_trace = false;
};

/// One executed slice of modeled work on one timeline (trace entry).
/// Compute entries run on the Host/Accel lanes; Transfer entries occupy the
/// PCIe-link lane; HaloComm entries occupy the network lane. Non-compute
/// kinds carry what moved in `label` (obs/trace_bridge renders each kind on
/// its own lane so modeled traces overlay measured ones in Perfetto).
struct TraceEntry {
  enum class Kind : int { Compute = 0, Transfer = 1, HaloComm = 2 };
  int node = -1;                       // Compute: node id (else -1)
  DeviceSide side = DeviceSide::Host;  // Host or Accel (never Split)
  Real start = 0;
  Real finish = 0;
  Kind kind = Kind::Compute;
  std::string label;  // Transfer/HaloComm: field or sync description
};

struct SimResult {
  Real makespan = 0;
  Real host_busy = 0;       // seconds the host computed
  Real accel_busy = 0;      // seconds the accelerator computed
  Real link_busy = 0;       // PCIe transfer seconds
  Real comm_seconds = 0;    // network halo-exchange seconds
  std::int64_t link_bytes = 0;

  /// Fraction of the busier device's time the other device was also busy —
  /// the load-balance indicator the pattern-driven design improves.
  [[nodiscard]] Real balance() const {
    const Real hi = std::max(host_busy, accel_busy);
    const Real lo = std::min(host_busy, accel_busy);
    return hi > 0 ? lo / hi : 1.0;
  }

  /// Per-node execution trace (filled when SimOptions::record_trace).
  std::vector<TraceEntry> trace;
};

/// Render a SimResult trace as a two-lane ASCII Gantt chart.
std::string render_gantt(const DataflowGraph& graph, const SimResult& result,
                         int width = 88);

/// Cost of one node under `opts` on the given side for `entities` of its
/// iteration space (helper shared by the simulator and the schedulers).
Real node_time(const PatternNode& node, DeviceSide side,
               std::int64_t entities, const Schedule& schedule,
               const SimOptions& opts);

/// Simulate `schedule` over `graph` with the entity counts in `sizes`.
SimResult simulate_schedule(const DataflowGraph& graph,
                            const Schedule& schedule, const MeshSizes& sizes,
                            const SimOptions& opts);

// ---- schedule builders -------------------------------------------------------
/// Everything on one device.
Schedule make_single_device_schedule(const DataflowGraph& graph,
                                     DeviceSide side, std::string name);

/// The serial "original code" schedule: host, one thread, irregular loops.
/// (Pair with OptLevel::SerialBaseline in SimOptions.)
Schedule make_serial_baseline_schedule(const DataflowGraph& graph);

/// Kernel-level hybrid design (Figure 2): every kernel function is placed
/// wholly on one device; the best of all kernel->device assignments is
/// chosen by exhaustive simulation (an *optimistic* version of the paper's
/// hand-tuned kernel-level algorithm).
Schedule make_kernel_level_schedule(const DataflowGraph& graph,
                                    const MeshSizes& sizes,
                                    const SimOptions& opts);

/// Pattern-driven hybrid design (Figure 4(b)): list scheduling at pattern
/// granularity with earliest-finish-time device choice, and range splitting
/// of heavy data-parallel patterns to equalize device completion times.
Schedule make_pattern_level_schedule(const DataflowGraph& graph,
                                     const MeshSizes& sizes,
                                     const SimOptions& opts);

}  // namespace mpas::core
