#include "service/admission.hpp"

#include <algorithm>
#include <sstream>

#include "sw/model.hpp"
#include "util/error.hpp"

namespace mpas::service {

namespace {

constexpr Real kEps = 1e-12;  // admission comparisons on summed Reals

std::int64_t cells_at_level(int level) {
  std::int64_t cells = 10;
  for (int i = 0; i < level; ++i) cells *= 4;
  return cells + 2;
}

}  // namespace

CostModel::CostModel(core::SimOptions sim) : sim_(sim) {}

const CostModel::LevelCost& CostModel::level_cost(int mesh_level) const {
  // The memoized pricing fill IS this lock's critical section: concurrent
  // submits for the same level must price it once.
  // concurrency-lint: allow(blocking-under-lock) memo fill is the critical section
  const util::LockGuard lock(mutex_);
  if (const auto it = cache_.find(mesh_level); it != cache_.end())
    return it->second;

  // Structure-only graphs (no mesh, no field bodies): pricing must stay
  // cheap enough to run on every submit.
  const sw::SwGraphs graphs = sw::build_sw_graphs(nullptr, false);
  const auto sizes = core::MeshSizes::icosahedral(cells_at_level(mesh_level));
  const auto makespan = [&](const core::DataflowGraph& graph) {
    const core::Schedule schedule =
        core::make_pattern_level_schedule(graph, sizes, sim_);
    return core::simulate_schedule(graph, schedule, sizes, sim_).makespan;
  };
  LevelCost cost;
  // One RK-4 step = setup + 3 early substeps + the final substep.
  cost.step_seconds = makespan(graphs.setup) + 3 * makespan(graphs.early) +
                      makespan(graphs.final);
  // One output = H (cells) + U (edges) downloaded over the platform link.
  const std::int64_t bytes =
      static_cast<std::int64_t>(sizeof(Real)) * (sizes.cells + sizes.edges);
  cost.output_seconds = sim_.platform.link.time(bytes);
  return cache_.emplace(mesh_level, cost).first->second;
}

Real CostModel::step_seconds(int mesh_level) const {
  return level_cost(mesh_level).step_seconds;
}

Real CostModel::output_seconds(int mesh_level) const {
  return level_cost(mesh_level).output_seconds;
}

Real CostModel::price(const SessionRequest& request) const {
  MPAS_CHECK_MSG(request.steps > 0, "session must run at least one step");
  MPAS_CHECK_MSG(request.mesh_level >= 0 && request.mesh_level <= 9,
                 "mesh level out of range");
  const LevelCost& cost = level_cost(request.mesh_level);
  const int outputs =
      request.output_every > 0 ? request.steps / request.output_every : 0;
  return cost.step_seconds * request.steps + cost.output_seconds * outputs;
}

AdmissionController::AdmissionController(AdmissionPolicy policy,
                                         const CostModel* costs)
    : policy_(policy), costs_(costs) {
  MPAS_CHECK_MSG(policy_.capacity_modeled_s > 0, "capacity must be positive");
  MPAS_CHECK(costs_ != nullptr);
}

void AdmissionController::set_tenant_weight(const std::string& tenant,
                                            Real weight) {
  MPAS_CHECK_MSG(weight > 0, "tenant weight must be positive");
  weights_[tenant] = weight;
}

Real AdmissionController::tenant_weight(const std::string& tenant) const {
  const auto it = weights_.find(tenant);
  return it == weights_.end() ? 1.0 : it->second;
}

Real AdmissionController::tenant_budget(const std::string& tenant) const {
  Real total = 0;
  bool declared = false;
  for (const auto& [name, w] : weights_) {
    total += w;
    declared = declared || name == tenant;
  }
  if (!declared) total += 1.0;  // undeclared tenants weigh 1
  return policy_.capacity_modeled_s * tenant_weight(tenant) / total;
}

AdmissionOutcome AdmissionController::decide(
    const SessionRequest& request, const AdmissionInput& input) const {
  AdmissionOutcome out;
  out.effective = request;

  // Rung 0: backpressure. A tenant flooding the queue is told to back off
  // before any pricing happens.
  if (input.queued_of_tenant >= policy_.max_queued_per_tenant) {
    std::ostringstream os;
    os << "backpressure: tenant '" << request.tenant << "' already has "
       << input.queued_of_tenant << " queued sessions (bound "
       << policy_.max_queued_per_tenant << ")";
    out.reason = os.str();
    out.reason_code = ReasonCode::RejectBackpressure;
    return out;
  }

  out.cost = costs_->price(request);
  const Real budget = tenant_budget(request.tenant);

  // Mutable view of the load; reclaim/shed rungs rehearse evictions here.
  Real total = input.outstanding_total;
  std::map<std::string, Real> by_tenant = input.outstanding_by_tenant;
  Real& mine = by_tenant[request.tenant];  // tracks rehearsed sheds too

  const auto fits = [&](Real cost) {
    return total + cost <= policy_.capacity_modeled_s + kEps;
  };
  const auto admit = [&](Real cost, const std::string& note,
                         ReasonCode code) {
    out.action = AdmissionOutcome::Action::Admit;
    out.cost = cost;
    out.borrowed = mine + cost > budget + kEps;
    std::ostringstream os;
    os << (out.borrowed ? "admitted borrowing spare capacity beyond the "
                          "tenant guarantee"
                        : "admitted within the tenant guarantee");
    if (!note.empty()) os << "; " << note;
    out.reason = os.str();
    out.reason_code = code != ReasonCode::None
                          ? code
                          : (out.borrowed ? ReasonCode::AdmitBorrowed
                                          : ReasonCode::AdmitGuarantee);
  };

  // Rung 1 + 2: fit as-is, within the guarantee or borrowing spare.
  if (fits(out.cost)) {
    admit(out.cost, "", ReasonCode::None);
    return out;
  }

  // Rung 3: reclaim borrowed queue slots — but only for a request that
  // would itself sit within its guarantee (reclaiming to borrow more
  // would just thrash). Exception: a tenant burning its SLO error budget
  // at >= slo_burn_guarantee gets this rung even beyond its guarantee —
  // capacity spent stopping a breach beats capacity lent to borrowers.
  const bool burn_priority =
      input.tenant_burn_rate >= policy_.slo_burn_guarantee - kEps;
  std::vector<ShedCandidate> candidates = input.queued;
  const auto rehearse_shed = [&](const ShedCandidate& c,
                                 const std::string& why, ReasonCode code) {
    total -= c.cost;
    by_tenant[c.tenant] -= c.cost;
    out.shed.push_back({c.id, why, code});
    candidates.erase(
        std::find_if(candidates.begin(), candidates.end(),
                     [&c](const ShedCandidate& x) { return x.id == c.id; }));
  };
  if (mine + out.cost <= budget + kEps || burn_priority) {
    while (!fits(out.cost)) {
      // Most polite eviction: the borrowed slot of the tenant furthest
      // over its guarantee; ties to the lowest priority, then youngest.
      const ShedCandidate* best = nullptr;
      Real best_excess = kEps;
      for (const ShedCandidate& c : candidates) {
        if (!c.borrowed || c.tenant == request.tenant) continue;
        const Real excess = by_tenant[c.tenant] - tenant_budget(c.tenant);
        if (excess <= kEps) continue;  // no longer over after earlier sheds
        const bool better =
            best == nullptr || excess > best_excess + kEps ||
            (excess > best_excess - kEps &&
             (c.priority < best->priority ||
              (c.priority == best->priority && c.seq > best->seq)));
        if (better) {
          best = &c;
          best_excess = excess;
        }
      }
      if (best == nullptr) break;
      std::ostringstream os;
      os << "reclaimed: tenant '" << best->tenant
         << "' was borrowing beyond its guaranteed share and tenant '"
         << request.tenant << "' claimed its ";
      if (burn_priority && mine + out.cost > budget + kEps)
        os << "SLO burn-rate priority (burn "
           << input.tenant_burn_rate << " >= " << policy_.slo_burn_guarantee
           << ")";
      else
        os << "guarantee";
      rehearse_shed(*best, os.str(), ReasonCode::ShedReclaimed);
    }
    if (fits(out.cost)) {
      std::ostringstream os;
      os << "after reclaiming borrowed capacity";
      if (burn_priority && mine + out.cost > budget + kEps)
        os << " under SLO burn-rate priority (burn "
           << input.tenant_burn_rate << ")";
      admit(out.cost, os.str(), ReasonCode::AdmitReclaimed);
      return out;
    }
  }

  // Rung 4: priority load-shedding — evict strictly lower-priority queued
  // work, lowest priority first, youngest first among equals.
  while (!fits(out.cost)) {
    const ShedCandidate* best = nullptr;
    for (const ShedCandidate& c : candidates) {
      if (c.priority >= request.priority) continue;
      const bool better = best == nullptr || c.priority < best->priority ||
                          (c.priority == best->priority && c.seq > best->seq);
      if (better) best = &c;
    }
    if (best == nullptr) break;
    std::ostringstream os;
    os << "shed: priority " << best->priority
       << " session evicted under overload for a priority "
       << request.priority << " submission";
    rehearse_shed(*best, os.str(), ReasonCode::ShedPriority);
  }
  if (fits(out.cost)) {
    admit(out.cost, "after shedding lower-priority sessions",
          ReasonCode::AdmitAfterShed);
    return out;
  }

  // Rung 5: degraded fidelity — coarsen one level at a time (halving the
  // output cadence with it) until the run fits or the floor is hit.
  if (request.allow_degraded) {
    SessionRequest degraded = request;
    while (degraded.mesh_level > policy_.degrade_min_level) {
      degraded.mesh_level -= 1;
      if (degraded.output_every > 0) degraded.output_every *= 2;
      const Real cost = costs_->price(degraded);
      if (fits(cost)) {
        out.action = AdmissionOutcome::Action::AdmitDegraded;
        out.effective = degraded;
        out.cost = cost;
        out.borrowed = mine + cost > budget + kEps;
        std::ostringstream os;
        os << "degraded under overload: mesh level " << request.mesh_level
           << " -> " << degraded.mesh_level;
        if (request.output_every > 0)
          os << ", output cadence " << request.output_every << " -> "
             << degraded.output_every;
        out.reason = os.str();
        out.reason_code = ReasonCode::AdmitDegraded;
        return out;
      }
    }
  }

  // Rung 6: reject, with the arithmetic that forced it.
  out.action = AdmissionOutcome::Action::Reject;
  out.shed.clear();  // rehearsed evictions are void on rejection
  std::ostringstream os;
  os << "overload: request needs " << out.cost << " modeled s but only "
     << std::max<Real>(0, policy_.capacity_modeled_s -
                              input.outstanding_total)
     << " of " << policy_.capacity_modeled_s
     << " is free, nothing lower-priority to shed"
     << (request.allow_degraded ? ", degradation exhausted"
                                : ", degradation not permitted");
  out.reason = os.str();
  out.reason_code = ReasonCode::RejectOverload;
  return out;
}

}  // namespace mpas::service
