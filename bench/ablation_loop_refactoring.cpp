// Ablation (Algorithms 2/3/4): measured wall time of the real reducible
// kernels in their three loop forms — irregular edge-order scatter,
// regularity-aware gather with the orientation branch, and branch-free
// gather through the label matrix. This is a *measured* microbenchmark of
// the actual kernels on this build machine (driven by the bench_harness
// repeat-until-stable runner), the functional counterpart of the modeled
// Figure 6 refactoring step.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "mesh/mesh_cache.hpp"
#include "sw/kernels.hpp"
#include "sw/testcases.hpp"

using namespace mpas;

namespace {

struct Fixture {
  std::shared_ptr<const mesh::VoronoiMesh> mesh;
  std::unique_ptr<sw::FieldStore> fields;
  sw::SwParams params;

  explicit Fixture(int level) {
    mesh = mesh::get_global_mesh(level);
    fields = std::make_unique<sw::FieldStore>(*mesh);
    const auto tc = sw::make_test_case(6);
    sw::apply_initial_conditions(*tc, *mesh, *fields);
    params.dt = 100;
    sw::SwContext c = ctx();
    sw::diag_h_edge(c, sw::FieldId::H, 0, mesh->num_edges);
  }

  sw::SwContext ctx() { return {*mesh, *fields, params, 0, 0}; }
};

}  // namespace

int main(int argc, char** argv) {
  const Config cfg =
      bench::bench_init(argc, argv, "ablation_loop_refactoring");
  const int level = static_cast<int>(cfg.get_int("level", 6));

  bench_harness::RunnerOptions ropts;  // repeat until the spread settles
  ropts.warmup = 2;
  ropts.min_repeats = 5;
  ropts.max_repeats =
      static_cast<int>(cfg.get_int("max_repeats", ropts.max_repeats));
  const bench_harness::BenchRunner runner(ropts);

  Fixture f(level);
  bench::report().environment().mesh_level = level;
  std::printf(
      "== Ablation: loop refactoring, measured kernel times ==\n"
      "mesh %s (%d cells), repeat-until-stable (<=%d repeats)\n\n",
      f.mesh->resolution_label().c_str(), f.mesh->num_cells,
      ropts.max_repeats);

  Table t({"kernel", "loop variant", "median ms", "min ms", "rel IQR",
           "Mitems/s", "repeats"});

  auto run_case = [&](const std::string& kernel, Index items,
                      const char* variant,
                      const std::function<void()>& body) {
    const auto r = runner.measure(body);
    const std::string series = kernel + "/" + variant;
    bench::add_measured(series, r, "s");
    t.add_row({kernel, variant, Table::fixed(r.stats.median * 1e3, 3),
               Table::fixed(r.stats.min * 1e3, 3),
               Table::fixed(r.stats.relative_iqr(), 3),
               Table::fixed(static_cast<Real>(items) / r.stats.median / 1e6, 1),
               std::to_string(r.repeats)});
  };

  for (int v = 0; v < 3; ++v) {
    const auto variant = static_cast<sw::LoopVariant>(v);
    const char* vname = to_string(variant);
    run_case("divergence", f.mesh->num_cells, vname, [&] {
      auto ctx = f.ctx();
      sw::diag_divergence(ctx, sw::FieldId::U, 0, f.mesh->num_cells, variant);
    });
    run_case("vorticity", f.mesh->num_vertices, vname, [&] {
      auto ctx = f.ctx();
      sw::diag_vorticity(ctx, sw::FieldId::U, 0, f.mesh->num_vertices,
                         variant);
    });
    run_case("tend_thickness", f.mesh->num_cells, vname, [&] {
      auto ctx = f.ctx();
      sw::tend_thickness(ctx, sw::FieldId::U, 0, f.mesh->num_cells, variant);
    });
    run_case("kinetic_energy", f.mesh->num_cells, vname, [&] {
      auto ctx = f.ctx();
      sw::diag_ke(ctx, sw::FieldId::U, 0, f.mesh->num_cells, variant);
    });
  }

  // The heaviest pattern (F1); gather-only, included for scale.
  {
    auto ctx0 = f.ctx();
    sw::diag_v_tangent(ctx0, sw::FieldId::U, 0, f.mesh->num_edges);
  }
  run_case("momentum_tendency", f.mesh->num_edges, "gather", [&] {
    auto ctx = f.ctx();
    sw::tend_momentum(ctx, sw::FieldId::H, sw::FieldId::U, 0,
                      f.mesh->num_edges);
  });

  bench::emit(t, "ablation_loop_refactoring");
  std::printf(
      "Reading: refactored/branch-free gather forms must not lose to the\n"
      "irregular scatter loops; the branch-free form is the one the SIMD\n"
      "stage of Figure 6 vectorises.\n");
  return 0;
}
