#include "sw/verify.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/race_detector.hpp"

namespace mpas::sw {

namespace {

bool declared(const std::vector<std::string>& set, const std::string& name) {
  for (const std::string& s : set)
    if (s == name) return true;
  return false;
}

/// Deterministic scramble values in [1, 2): positive (thickness-like
/// fields must stay away from zero — several kernels divide by them) and
/// different per field and entity, so a copy kernel's writes always change
/// the destination and are detectable by diff.
Real scramble_value(int field, std::size_t i) {
  std::uint64_t x = 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(i) +
                                             0x100000001b3ULL * (field + 1));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return 1.0 + static_cast<Real>(x % 0x100000ULL) / 0x100000ULL;
}

}  // namespace

analysis::Report verify_pattern_access(const core::DataflowGraph& graph,
                                       SwContext& ctx) {
  analysis::Report report;
  FieldStore& fs = ctx.fields;

  // Save everything the replay clobbers.
  std::vector<std::vector<Real>> saved(kNumFields);
  for (int f = 0; f < kNumFields; ++f) {
    const auto span = fs.get(static_cast<FieldId>(f));
    saved[f].assign(span.begin(), span.end());
  }
  const Real saved_substep = ctx.rk_substep_coeff;
  const Real saved_accum = ctx.rk_accum_coeff;
  ctx.rk_substep_coeff = 0.375;  // nonzero so update kernels visibly write
  ctx.rk_accum_coeff = 0.625;

  for (int f = 0; f < kNumFields; ++f) {
    auto span = fs.get(static_cast<FieldId>(f));
    for (std::size_t i = 0; i < span.size(); ++i)
      span[i] = scramble_value(f, i);
  }

  FieldAccessTracker tracker;
  std::vector<std::vector<Real>> pre(kNumFields);
  for (int id : graph.topological_order()) {
    const core::PatternNode& node = graph.node(id);
    if (!node.body) {
      report.add({analysis::Severity::Info, "no-body", id, -1, "",
                  node.label + " has no functional body; access set taken "
                               "on trust"});
      continue;
    }
    for (int f = 0; f < kNumFields; ++f) {
      const auto span = fs.get(static_cast<FieldId>(f));
      pre[f].assign(span.begin(), span.end());
    }

    tracker.clear();
    fs.set_tracker(&tracker);
    node.body({0, fs.size_of(node.iterates), core::VariantChoice::BranchFree});
    fs.set_tracker(nullptr);

    for (int f = 0; f < kNumFields; ++f) {
      const FieldId fid = static_cast<FieldId>(f);
      const std::string name = field_info(fid).name;
      const auto span = fs.get(fid);
      bool changed = false;
      for (std::size_t i = 0; i < span.size() && !changed; ++i)
        changed = span[i] != pre[f][i];

      if (changed) tracker.writes.set(static_cast<std::size_t>(f));
      if (tracker.touched.test(static_cast<std::size_t>(f)) && !changed)
        tracker.reads.set(static_cast<std::size_t>(f));

      const bool in = declared(node.inputs, name);
      const bool out = declared(node.outputs, name);
      if (changed && !out) {
        report.add({analysis::Severity::Error, "undeclared-write", id, -1,
                    name,
                    node.label + " mutated '" + name +
                        "' which is not in its declared outputs — derived "
                        "dependency edges are wrong"});
      } else if (tracker.touched.test(static_cast<std::size_t>(f)) && !in &&
                 !out) {
        report.add({analysis::Severity::Error, "undeclared-access", id, -1,
                    name,
                    node.label + " accessed '" + name +
                        "' which is in neither its declared inputs nor "
                        "outputs"});
      }
      if (out && !tracker.touched.test(static_cast<std::size_t>(f)))
        report.add({analysis::Severity::Warning, "untouched-output", id, -1,
                    name,
                    node.label + " declares output '" + name +
                        "' but never accessed it"});
      if (in && !tracker.touched.test(static_cast<std::size_t>(f)))
        report.add({analysis::Severity::Warning, "untouched-input", id, -1,
                    name,
                    node.label + " declares input '" + name +
                        "' but never accessed it"});
    }
  }

  for (int f = 0; f < kNumFields; ++f) {
    auto span = fs.get(static_cast<FieldId>(f));
    std::copy(saved[f].begin(), saved[f].end(), span.begin());
  }
  ctx.rk_substep_coeff = saved_substep;
  ctx.rk_accum_coeff = saved_accum;
  return report;
}

analysis::Report verify_schedule_races(const core::DataflowGraph& graph) {
  analysis::RaceDetector detector;
  const std::vector<int> level = graph.levels();
  int max_level = -1;
  for (int l : level) max_level = std::max(max_level, l);

  analysis::RaceDetector::TaskId prev = -1;
  for (int l = 0; l <= max_level; ++l) {
    std::vector<analysis::RaceDetector::TaskId> batch;
    std::vector<int> batch_nodes;
    for (int id = 0; id < graph.num_nodes(); ++id) {
      if (level[static_cast<std::size_t>(id)] != l) continue;
      const core::PatternNode& node = graph.node(id);
      const auto task = detector.begin_task(node.label, id);
      if (prev >= 0) detector.happens_before(prev, task);
      batch.push_back(task);
      batch_nodes.push_back(id);
      for (const std::string& in : node.inputs) detector.on_read(task, in);
      for (const std::string& out : node.outputs)
        detector.on_write(task, out);
    }
    // The pool's implicit barrier, then the serial halo-exchange writes —
    // exactly what SwModel's node-parallel executor enforces per level.
    auto fence = detector.barrier(batch, "level-" + std::to_string(l));
    if (prev >= 0) detector.happens_before(prev, fence);
    for (int id : batch_nodes) {
      if (!graph.has_halo_sync_after(id)) continue;
      const core::PatternNode& node = graph.node(id);
      const auto sync = detector.begin_task("halo:" + node.label, id);
      detector.happens_before(fence, sync);
      for (const std::string& out : node.outputs)
        detector.on_write(sync, out);
      fence = detector.barrier({fence, sync}, "post-halo-" + node.label);
    }
    prev = fence;
  }
  detector.publish_metrics();
  return detector.report();
}

analysis::Report verify_sw_graphs(const SwGraphs& graphs, SwContext* ctx,
                                  const VerifyOptions& options) {
  analysis::Report report;
  const core::DataflowGraph* all[] = {&graphs.setup, &graphs.early,
                                      &graphs.final};
  for (const core::DataflowGraph* graph : all) {
    analysis::Report local = analysis::verify_graph(*graph, options.graph);
    if (options.check_access_sets && ctx != nullptr)
      local.merge(verify_pattern_access(*graph, *ctx));
    if (options.check_schedule_races)
      local.merge(verify_schedule_races(*graph));
    for (analysis::Diagnostic d : local.diagnostics()) {
      d.message = "[" + graph->name() + "] " + d.message;
      report.add(std::move(d));
    }
  }
  return report;
}

bool verify_mode_enabled() {
  const char* env = std::getenv("MPAS_VERIFY");
  return env != nullptr && std::string(env) == "1";
}

}  // namespace mpas::sw
