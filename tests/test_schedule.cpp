// Tests for schedule simulation and the two hybrid schedulers, on both toy
// graphs and the real shallow-water graphs.
#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "sw/model.hpp"

namespace mpas::core {
namespace {

PatternNode heavy_node(std::string label, std::vector<std::string> in,
                       std::vector<std::string> out,
                       MeshLocation loc = MeshLocation::Cell,
                       bool splittable = true) {
  PatternNode n;
  n.label = std::move(label);
  n.kind = PatternKind::A;
  n.kernel = KernelGroup::ComputeSolveDiagnostics;
  n.iterates = loc;
  n.inputs = std::move(in);
  n.outputs = std::move(out);
  n.cost_gather = {.flops = 30, .bytes_streamed = 60, .bytes_gathered = 140,
                   .bytes_written = 8};
  n.splittable = splittable;
  return n;
}

SimOptions default_opts() {
  SimOptions o;
  o.platform = machine::paper_platform();
  return o;
}

TEST(ScheduleSim, SingleDeviceMakespanIsSumOfNodeTimes) {
  DataflowGraph g("chain");
  g.add_node(heavy_node("a", {"u"}, {"p"}));
  g.add_node(heavy_node("b", {"p"}, {"q"}));
  g.finalize();
  const auto sizes = MeshSizes::icosahedral(40962);
  const auto opts = default_opts();
  const Schedule s = make_single_device_schedule(g, DeviceSide::Host, "host");
  const SimResult r = simulate_schedule(g, s, sizes, opts);
  const Real expect =
      node_time(g.node(0), DeviceSide::Host, sizes.cells, s, opts) +
      node_time(g.node(1), DeviceSide::Host, sizes.cells, s, opts);
  EXPECT_NEAR(r.makespan, expect, 1e-12);
  EXPECT_NEAR(r.host_busy, expect, 1e-12);
  EXPECT_EQ(r.accel_busy, 0.0);
  EXPECT_EQ(r.link_bytes, 0);
}

TEST(ScheduleSim, IndependentNodesOverlapAcrossDevices) {
  DataflowGraph g("par");
  g.add_node(heavy_node("a", {"u"}, {"p"}));
  g.add_node(heavy_node("b", {"u"}, {"q"}));
  g.finalize();
  const auto sizes = MeshSizes::icosahedral(163842);
  const auto opts = default_opts();
  Schedule s;
  s.name = "hybrid";
  s.assignments = {{DeviceSide::Host, 1.0}, {DeviceSide::Accel, 0.0}};
  const SimResult r = simulate_schedule(g, s, sizes, opts);
  // Makespan is the max of the two, not the sum.
  EXPECT_NEAR(r.makespan, std::max(r.host_busy, r.accel_busy), 1e-12);
  EXPECT_GT(r.host_busy, 0);
  EXPECT_GT(r.accel_busy, 0);
}

TEST(ScheduleSim, CrossDeviceDependencyPaysTransfer) {
  DataflowGraph g("xfer");
  g.add_node(heavy_node("a", {"u"}, {"p"}));
  g.add_node(heavy_node("b", {"p"}, {"q"}));
  g.finalize();
  const auto sizes = MeshSizes::icosahedral(40962);
  const auto opts = default_opts();
  Schedule s;
  s.name = "cross";
  s.assignments = {{DeviceSide::Host, 1.0}, {DeviceSide::Accel, 0.0}};
  const SimResult r = simulate_schedule(g, s, sizes, opts);
  EXPECT_EQ(r.link_bytes, sizes.cells * 8);  // field p crosses once
  EXPECT_GT(r.link_busy, 0);
  EXPECT_GE(r.makespan, r.host_busy + r.accel_busy);  // serialized chain
}

TEST(ScheduleSim, TransferHappensOncePerVersion) {
  DataflowGraph g("reuse");
  g.add_node(heavy_node("a", {"u"}, {"p"}));
  g.add_node(heavy_node("b", {"p"}, {"q"}));
  g.add_node(heavy_node("c", {"p"}, {"r"}));
  g.finalize();
  const auto sizes = MeshSizes::icosahedral(40962);
  Schedule s;
  s.name = "reuse";
  s.assignments = {{DeviceSide::Host, 1.0},
                   {DeviceSide::Accel, 0.0},
                   {DeviceSide::Accel, 0.0}};
  const SimResult r = simulate_schedule(g, s, sizes, default_opts());
  EXPECT_EQ(r.link_bytes, sizes.cells * 8);  // p uploaded once, reused by c
}

TEST(ScheduleSim, SplitNodeMovesOnlyRemoteFractions) {
  DataflowGraph g("split");
  g.add_node(heavy_node("a", {"u"}, {"p"}));
  g.add_node(heavy_node("b", {"p"}, {"q"}));
  g.finalize();
  const auto sizes = MeshSizes::icosahedral(40962);
  Schedule s;
  s.name = "split";
  s.assignments = {{DeviceSide::Split, 0.25}, {DeviceSide::Host, 1.0}};
  const SimResult r = simulate_schedule(g, s, sizes, default_opts());
  // Host consumer needs the accelerator's 75% of p.
  EXPECT_NEAR(static_cast<double>(r.link_bytes),
              0.75 * static_cast<double>(sizes.cells) * 8, 8.0);
}

TEST(ScheduleSim, HaloSyncAddsCommAndBarriers) {
  DataflowGraph g("halo");
  const int a = g.add_node(heavy_node("a", {"u"}, {"p"}));
  g.add_node(heavy_node("b", {"p"}, {"q"}));
  g.add_halo_sync_after(a);
  g.finalize();
  const auto sizes = MeshSizes::icosahedral(40962);
  auto opts = default_opts();
  const Schedule s = make_single_device_schedule(g, DeviceSide::Host, "host");
  const Real quiet = simulate_schedule(g, s, sizes, opts).makespan;
  opts.halo_bytes_per_sync = 2 * 1024 * 1024;
  opts.halo_neighbors = 6;
  const SimResult r = simulate_schedule(g, s, sizes, opts);
  EXPECT_GT(r.comm_seconds, 0);
  EXPECT_GT(r.makespan, quiet);
}

TEST(Schedulers, KernelLevelNeverWorseThanBestSingleDevice) {
  sw::SwGraphs graphs = sw::build_sw_graphs(nullptr, false);
  const auto sizes = MeshSizes::icosahedral(655362);
  const auto opts = default_opts();
  const auto& g = graphs.early;

  const Real host = simulate_schedule(
      g, make_single_device_schedule(g, DeviceSide::Host, "h"), sizes, opts)
                        .makespan;
  const Real accel = simulate_schedule(
      g, make_single_device_schedule(g, DeviceSide::Accel, "a"), sizes, opts)
                         .makespan;
  const Schedule kl = make_kernel_level_schedule(g, sizes, opts);
  const Real hybrid = simulate_schedule(g, kl, sizes, opts).makespan;
  EXPECT_LE(hybrid, std::min(host, accel) * 1.0001);
}

TEST(Schedulers, PatternLevelBeatsKernelLevel) {
  // The paper's headline structural claim (Fig. 7): finer granularity plus
  // the adjustable split gives better load balance than kernel-level.
  sw::SwGraphs graphs = sw::build_sw_graphs(nullptr, false);
  const auto sizes = MeshSizes::icosahedral(655362);
  const auto opts = default_opts();
  for (const auto* g : {&graphs.early, &graphs.final}) {
    const Real kl =
        simulate_schedule(*g, make_kernel_level_schedule(*g, sizes, opts),
                          sizes, opts)
            .makespan;
    const Real pl =
        simulate_schedule(*g, make_pattern_level_schedule(*g, sizes, opts),
                          sizes, opts)
            .makespan;
    EXPECT_LT(pl, kl) << g->name();
  }
}

TEST(Schedulers, PatternLevelImprovesBalance) {
  sw::SwGraphs graphs = sw::build_sw_graphs(nullptr, false);
  const auto sizes = MeshSizes::icosahedral(655362);
  const auto opts = default_opts();
  const auto& g = graphs.early;
  const SimResult kl = simulate_schedule(
      g, make_kernel_level_schedule(g, sizes, opts), sizes, opts);
  const SimResult pl = simulate_schedule(
      g, make_pattern_level_schedule(g, sizes, opts), sizes, opts);
  EXPECT_GT(pl.balance(), kl.balance());
}

TEST(Schedulers, SerialBaselineUsesIrregularLoops) {
  sw::SwGraphs graphs = sw::build_sw_graphs(nullptr, false);
  const Schedule s = make_serial_baseline_schedule(graphs.early);
  EXPECT_EQ(s.host_variant, VariantChoice::Irregular);
  for (const auto& a : s.assignments) EXPECT_EQ(a.side, DeviceSide::Host);
}

TEST(SwGraphs, StructureMatchesAlgorithmOne) {
  sw::SwGraphs graphs = sw::build_sw_graphs(nullptr, false);
  EXPECT_EQ(graphs.setup.num_nodes(), 4);
  // early: A1 F1 X1 X2 X3 + 8 diagnostics + X4 X5 = 15
  EXPECT_EQ(graphs.early.num_nodes(), 15);
  // final: A1 F1 X1 X4 X5 X2 X3 + 8 diagnostics + A4 X6 = 17
  EXPECT_EQ(graphs.final.num_nodes(), 17);
  // Diffusion adds B1, X7, C2 to both stepping graphs.
  sw::SwGraphs with_diff = sw::build_sw_graphs(nullptr, true);
  EXPECT_EQ(with_diff.early.num_nodes(), 18);
  EXPECT_EQ(with_diff.final.num_nodes(), 20);
}

TEST(SwGraphs, EveryPatternKindAppears) {
  sw::SwGraphs graphs = sw::build_sw_graphs(nullptr, true);
  bool seen[9] = {};
  for (const auto* g : {&graphs.early, &graphs.final})
    for (const auto& n : g->nodes())
      seen[static_cast<int>(n.kind)] = true;
  for (int k = 0; k < 9; ++k)
    EXPECT_TRUE(seen[k]) << "pattern kind " << k << " missing";
}

TEST(SwGraphs, HaloSyncsAreOnProvisAndState) {
  sw::SwGraphs graphs = sw::build_sw_graphs(nullptr, false);
  int early_syncs = 0, final_syncs = 0;
  for (const auto& n : graphs.early.nodes())
    if (graphs.early.has_halo_sync_after(n.id)) ++early_syncs;
  for (const auto& n : graphs.final.nodes())
    if (graphs.final.has_halo_sync_after(n.id)) ++final_syncs;
  // Two syncs on the provisional/committed state plus one on pv_edge (the
  // APVM stencil reaches one layer further) per substep.
  EXPECT_EQ(early_syncs, 3);
  EXPECT_EQ(final_syncs, 3);
}

TEST(SwGraphs, MomentumTendencyDependsOnDiagnosticsViaWar) {
  // In one substep the diagnostics REwrite fields the tendencies read:
  // C1 (h_edge) must wait for A1 and F1 (WAR) — this is exactly why the
  // diagram of Fig. 4 orders the kernels the way it does.
  sw::SwGraphs graphs = sw::build_sw_graphs(nullptr, false);
  const auto& g = graphs.early;
  int a1 = -1, f1 = -1, c1 = -1;
  for (const auto& n : g.nodes()) {
    if (n.label == "A1") a1 = n.id;
    if (n.label == "F1") f1 = n.id;
    if (n.label == "C1") c1 = n.id;
  }
  ASSERT_GE(a1, 0);
  ASSERT_GE(f1, 0);
  ASSERT_GE(c1, 0);
  bool c1_after_a1 = false, c1_after_f1 = false;
  for (int p : g.predecessors(c1)) {
    c1_after_a1 |= (p == a1);
    c1_after_f1 |= (p == f1);
  }
  EXPECT_TRUE(c1_after_a1);
  EXPECT_TRUE(c1_after_f1);
}

}  // namespace
}  // namespace mpas::core
