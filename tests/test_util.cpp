// Unit tests for the util substrate: aligned storage, 2-D arrays, spherical
// geometry, config parsing, timing stats, and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/aligned_vector.hpp"
#include "util/array2d.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"
#include "util/vec3.hpp"

namespace mpas {
namespace {

TEST(AlignedVector, BaseAddressIs64ByteAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedVector<double> v(n, 1.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kFieldAlignment, 0u);
  }
}

TEST(AlignedVector, BehavesLikeVector) {
  AlignedVector<int> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[42], 42);
}

TEST(Array2D, IndexingAndRows) {
  Array2D<int> a(3, 4, -1);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  a(1, 2) = 7;
  EXPECT_EQ(a(1, 2), 7);
  auto row = a.row(1);
  EXPECT_EQ(row.size(), 4u);
  EXPECT_EQ(row[2], 7);
  EXPECT_EQ(row[0], -1);
}

TEST(Array2D, EqualityComparesShapeAndData) {
  Array2D<int> a(2, 2, 0), b(2, 2, 0);
  EXPECT_EQ(a, b);
  b(0, 1) = 5;
  EXPECT_FALSE(a == b);
}

TEST(Vec3, CrossAndDot) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  const Vec3 c = x.cross(y);
  EXPECT_NEAR(c.x, z.x, 1e-15);
  EXPECT_NEAR(c.y, z.y, 1e-15);
  EXPECT_NEAR(c.z, z.z, 1e-15);
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
}

TEST(Sphere, ArcLengthMatchesAngle) {
  const Vec3 a{1, 0, 0};
  const Vec3 b = sphere::from_lon_lat(0.3, 0.0);
  EXPECT_NEAR(sphere::arc_length(a, b), 0.3, 1e-14);
  // Antipodal points: arc length is pi.
  EXPECT_NEAR(sphere::arc_length(a, {-1, 0, 0}), constants::kPi, 1e-14);
}

TEST(Sphere, OctantTriangleArea) {
  // The (+x,+y,+z) octant triangle covers 1/8 of the sphere: area pi/2.
  const Real area =
      sphere::triangle_area({1, 0, 0}, {0, 1, 0}, {0, 0, 1});
  EXPECT_NEAR(area, constants::kPi / 2, 1e-12);
}

TEST(Sphere, CircumcenterIsEquidistant) {
  const Vec3 a = sphere::from_lon_lat(0.1, 0.2);
  const Vec3 b = sphere::from_lon_lat(0.5, 0.1);
  const Vec3 c = sphere::from_lon_lat(0.3, 0.5);
  const Vec3 cc = sphere::circumcenter(a, b, c);
  EXPECT_NEAR(cc.norm(), 1.0, 1e-14);
  const Real da = sphere::arc_length(cc, a);
  EXPECT_NEAR(sphere::arc_length(cc, b), da, 1e-12);
  EXPECT_NEAR(sphere::arc_length(cc, c), da, 1e-12);
  // Same hemisphere as the triangle.
  EXPECT_GT(cc.dot(a + b + c), 0);
}

TEST(Sphere, EastNorthFrameIsOrthonormalRightHanded) {
  const Vec3 p = sphere::from_lon_lat(1.2, 0.7);
  const Vec3 e = sphere::east_at(p);
  const Vec3 n = sphere::north_at(p);
  EXPECT_NEAR(e.norm(), 1.0, 1e-14);
  EXPECT_NEAR(n.norm(), 1.0, 1e-13);
  EXPECT_NEAR(e.dot(n), 0.0, 1e-14);
  EXPECT_NEAR(e.dot(p), 0.0, 1e-14);
  // east x north == up (outward radial).
  const Vec3 up = e.cross(n);
  EXPECT_NEAR(up.dot(p.normalized()), 1.0, 1e-12);
  // North points toward increasing latitude.
  const Vec3 q = sphere::from_lon_lat(1.2, 0.7001);
  EXPECT_GT(n.dot(q - p), 0);
}

TEST(Sphere, LonLatRoundTrip) {
  for (Real lon : {0.0, 1.0, 3.0, 6.0})
    for (Real lat : {-1.3, -0.4, 0.0, 0.9}) {
      const Vec3 p = sphere::from_lon_lat(lon, lat);
      EXPECT_NEAR(sphere::longitude(p), lon, 1e-12);
      EXPECT_NEAR(sphere::latitude(p), lat, 1e-12);
    }
}

TEST(Config, ParsesTypedValues) {
  const char* argv[] = {"prog", "level=7", "dt=90.5", "hybrid=true", "flag"};
  const Config cfg = Config::from_args(5, argv);
  EXPECT_EQ(cfg.get_int("level", -1), 7);
  EXPECT_DOUBLE_EQ(cfg.get_real("dt", 0), 90.5);
  EXPECT_TRUE(cfg.get_bool("hybrid", false));
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
}

TEST(Config, RejectsMalformedNumbers) {
  Config cfg;
  cfg.set("dt", "fast");
  EXPECT_THROW(static_cast<void>(cfg.get_real("dt", 0)), Error);
  cfg.set("n", "12x");
  EXPECT_THROW(static_cast<void>(cfg.get_int("n", 0)), Error);
  cfg.set("b", "maybe");
  EXPECT_THROW(static_cast<void>(cfg.get_bool("b", false)), Error);
}

TEST(TimingStats, AccumulatesMinMeanMax) {
  TimingStats stats;
  stats.add("step", 1.0);
  stats.add("step", 3.0);
  ASSERT_TRUE(stats.contains("step"));
  const auto e = stats.get("step");
  EXPECT_EQ(e.count, 2u);
  EXPECT_DOUBLE_EQ(e.total, 4.0);
  EXPECT_DOUBLE_EQ(e.min, 1.0);
  EXPECT_DOUBLE_EQ(e.max, 3.0);
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
  EXPECT_FALSE(stats.contains("absent"));
  EXPECT_EQ(stats.get("absent").count, 0u);
}

TEST(TimingStats, HandleSkipsLookupButHitsSameEntry) {
  TimingStats stats;
  const auto h = stats.handle("kernel");
  ASSERT_TRUE(h.valid());
  stats.add(h, 2.0);
  stats.add("kernel", 4.0);
  const auto e = stats.get("kernel");
  EXPECT_EQ(e.count, 2u);
  EXPECT_DOUBLE_EQ(e.total, 6.0);
  EXPECT_FALSE(TimingStats::SectionHandle().valid());
}

TEST(TimingStats, ConcurrentAddsDoNotLoseSamples) {
  TimingStats stats;
  const auto h = stats.handle("hot");
  constexpr int kThreads = 4;
  constexpr int kAdds = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats, h] {
      for (int i = 0; i < kAdds; ++i) {
        stats.add(h, 1.0);
        stats.add("named", 0.5);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(stats.get("hot").count, std::size_t{kThreads} * kAdds);
  EXPECT_DOUBLE_EQ(stats.get("hot").total, double(kThreads) * kAdds);
  EXPECT_EQ(stats.get("named").count, std::size_t{kThreads} * kAdds);
}

TEST(Logger, ParsesLevelNamesAndNumbers) {
  EXPECT_EQ(Logger::parse_level("debug"), LogLevel::Debug);
  EXPECT_EQ(Logger::parse_level("INFO"), LogLevel::Info);
  EXPECT_EQ(Logger::parse_level("Warn"), LogLevel::Warn);
  EXPECT_EQ(Logger::parse_level("error"), LogLevel::Error);
  EXPECT_EQ(Logger::parse_level("off"), LogLevel::Off);
  EXPECT_EQ(Logger::parse_level("0"), LogLevel::Debug);
  EXPECT_EQ(Logger::parse_level("4"), LogLevel::Off);
  EXPECT_EQ(Logger::parse_level("verbose"), std::nullopt);
  EXPECT_EQ(Logger::parse_level("7"), std::nullopt);
  EXPECT_EQ(Logger::parse_level(""), std::nullopt);
}

TEST(Table, AsciiAndCsvRendering) {
  Table t({"mesh", "cells"});
  t.add_row({"120-km", "40962"});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("120-km"), std::string::npos);
  EXPECT_NE(ascii.find("cells"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "mesh,cells\n120-km,40962\n");
  EXPECT_THROW(t.add_row({"only-one-cell"}), Error);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a"});
  t.add_row({"x,y"});
  t.add_row({"he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Error, ChecksThrowWithContext) {
  EXPECT_THROW(MPAS_CHECK(1 == 2), Error);
  try {
    MPAS_CHECK_MSG(false, "value was " << 41);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 41"), std::string::npos);
  }
}

}  // namespace
}  // namespace mpas
