// Schedule builders: single-device baselines, the kernel-level hybrid
// design (Figure 2) and the pattern-driven hybrid design (Figure 4(b)).
#include <algorithm>
#include <cmath>
#include <map>

#include "core/schedule.hpp"
#include "util/error.hpp"

namespace mpas::core {

Schedule make_single_device_schedule(const DataflowGraph& graph,
                                     DeviceSide side, std::string name) {
  MPAS_CHECK(side != DeviceSide::Split);
  Schedule s;
  s.name = std::move(name);
  s.assignments.assign(static_cast<std::size_t>(graph.num_nodes()),
                       Assignment{side, side == DeviceSide::Host ? 1.0 : 0.0});
  return s;
}

Schedule make_serial_baseline_schedule(const DataflowGraph& graph) {
  Schedule s = make_single_device_schedule(graph, DeviceSide::Host,
                                           "cpu-serial-original");
  s.host_variant = VariantChoice::Irregular;
  return s;
}

Schedule make_kernel_level_schedule(const DataflowGraph& graph,
                                    const MeshSizes& sizes,
                                    const SimOptions& opts) {
  // Collect the kernels present, in program order.
  std::vector<KernelGroup> kernels;
  for (const auto& node : graph.nodes())
    if (std::find(kernels.begin(), kernels.end(), node.kernel) ==
        kernels.end())
      kernels.push_back(node.kernel);
  const int k = static_cast<int>(kernels.size());
  MPAS_CHECK_MSG(k <= 16, "too many kernels for exhaustive search");

  // Exhaustively try every kernel->device assignment and keep the best
  // simulated makespan. This gives the kernel-level design the benefit of
  // a perfect placement oracle — the pattern-driven design must win on
  // granularity alone.
  Schedule best;
  Real best_makespan = -1;
  for (std::uint32_t mask = 0; mask < (1u << k); ++mask) {
    Schedule cand;
    cand.name = "kernel-level";
    cand.assignments.resize(static_cast<std::size_t>(graph.num_nodes()));
    for (const auto& node : graph.nodes()) {
      const int ki = static_cast<int>(
          std::find(kernels.begin(), kernels.end(), node.kernel) -
          kernels.begin());
      const bool on_accel = (mask >> ki) & 1u;
      cand.assignments[static_cast<std::size_t>(node.id)] =
          Assignment{on_accel ? DeviceSide::Accel : DeviceSide::Host,
                     on_accel ? 0.0 : 1.0};
    }
    const Real makespan = simulate_schedule(graph, cand, sizes, opts).makespan;
    if (best_makespan < 0 || makespan < best_makespan) {
      best_makespan = makespan;
      best = std::move(cand);
    }
  }
  return best;
}

Schedule make_pattern_level_schedule(const DataflowGraph& graph,
                                     const MeshSizes& sizes,
                                     const SimOptions& opts) {
  // Greedy earliest-finish-time list scheduling at pattern granularity,
  // with range splitting of splittable nodes to equalize device finish
  // times (the "adjustable part"). Transfer costs are ignored while making
  // the greedy choice (they are small once mesh data is resident) but are
  // fully charged by the final simulation.
  Schedule s;
  s.name = "pattern-driven";
  s.assignments.resize(static_cast<std::size_t>(graph.num_nodes()));

  Real host_free = 0, accel_free = 0;
  std::vector<Real> node_finish(static_cast<std::size_t>(graph.num_nodes()), 0);

  for (int id : graph.topological_order()) {
    const PatternNode& node = graph.node(id);
    const std::int64_t n = sizes.at(node.iterates);
    Real ready = 0;
    for (int p : graph.predecessors(id))
      ready = std::max(ready, node_finish[static_cast<std::size_t>(p)]);

    const Real t_host = node_time(node, DeviceSide::Host, n, s, opts);
    const Real t_accel = node_time(node, DeviceSide::Accel, n, s, opts);

    const Real finish_host = std::max(host_free, ready) + t_host;
    const Real finish_accel = std::max(accel_free, ready) + t_accel;

    // Split option: choose alpha so both sides finish together. Device
    // time is close to linear in entities above the region overhead, so
    // solve on the linear part and clamp.
    Real finish_split = 1e300;
    Real alpha = 0.5;
    if (node.splittable && n > 1) {
      const Real sh = std::max(host_free, ready);
      const Real sa = std::max(accel_free, ready);
      // sh + alpha*t_host == sa + (1-alpha)*t_accel
      alpha = (sa - sh + t_accel) / (t_host + t_accel);
      alpha = std::clamp(alpha, 0.0, 1.0);
      if (alpha > 0.02 && alpha < 0.98) {
        const auto nh = static_cast<std::int64_t>(
            std::llround(static_cast<double>(n) * alpha));
        const Real th = node_time(node, DeviceSide::Host, nh, s, opts);
        const Real ta = node_time(node, DeviceSide::Accel, n - nh, s, opts);
        finish_split = std::max(sh + th, sa + ta);
      }
    }

    if (finish_split <= finish_host && finish_split <= finish_accel) {
      s.assignments[static_cast<std::size_t>(id)] =
          Assignment{DeviceSide::Split, alpha};
      const auto nh = static_cast<std::int64_t>(
          std::llround(static_cast<double>(n) * alpha));
      host_free = std::max(host_free, ready) +
                  node_time(node, DeviceSide::Host, nh, s, opts);
      accel_free = std::max(accel_free, ready) +
                   node_time(node, DeviceSide::Accel, n - nh, s, opts);
      node_finish[static_cast<std::size_t>(id)] = finish_split;
    } else if (finish_host <= finish_accel) {
      s.assignments[static_cast<std::size_t>(id)] =
          Assignment{DeviceSide::Host, 1.0};
      host_free = finish_host;
      node_finish[static_cast<std::size_t>(id)] = finish_host;
    } else {
      s.assignments[static_cast<std::size_t>(id)] =
          Assignment{DeviceSide::Accel, 0.0};
      accel_free = finish_accel;
      node_finish[static_cast<std::size_t>(id)] = finish_accel;
    }
  }
  return s;
}

}  // namespace mpas::core
