#include "resilience/checkpoint.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mpas::resilience {

void Checkpoint::begin(std::int64_t step) {
  MPAS_CHECK_MSG(step >= 0, "checkpoint step must be >= 0, got " << step);
  staging_slots_.clear();
  staging_step_ = step;
  staging_ = true;
}

void Checkpoint::save(int rank, int slot, std::span<const Real> data) {
  MPAS_CHECK_MSG(staging_, "checkpoint save before begin()");
  staging_slots_[{rank, slot}].assign(data.begin(), data.end());
}

void Checkpoint::commit() {
  MPAS_CHECK_MSG(staging_, "checkpoint commit before begin()");
  slots_.swap(staging_slots_);
  staging_slots_.clear();
  step_ = staging_step_;
  staging_ = false;
  valid_ = true;
}

void Checkpoint::abandon() {
  staging_slots_.clear();
  staging_step_ = -1;
  staging_ = false;
}

void Checkpoint::restore(int rank, int slot, std::span<Real> out) const {
  MPAS_CHECK_MSG(valid_, "checkpoint restore before commit()");
  const auto it = slots_.find({rank, slot});
  MPAS_CHECK_MSG(it != slots_.end(),
                 "no checkpoint data for rank " << rank << " slot " << slot);
  MPAS_CHECK_MSG(it->second.size() == out.size(),
                 "checkpoint size mismatch for rank "
                     << rank << " slot " << slot << ": saved "
                     << it->second.size() << ", restoring " << out.size());
  std::copy(it->second.begin(), it->second.end(), out.begin());
}

std::int64_t Checkpoint::step() const {
  MPAS_CHECK_MSG(valid_, "checkpoint step() before commit()");
  return step_;
}

std::size_t Checkpoint::bytes() const {
  std::size_t total = 0;
  for (const auto& [key, data] : slots_) total += data.size() * sizeof(Real);
  return total;
}

}  // namespace mpas::resilience
