// Conserved quantities of the shallow-water system on the discrete mesh:
// total mass (conserved to rounding by the flux-form continuity equation),
// total energy and potential enstrophy (conserved to time-truncation error
// by the TRiSK spatial discretization). Used to validate long integrations.
#pragma once

#include "sw/fields.hpp"

namespace mpas::sw {

struct Invariants {
  Real mass = 0;                 // integral of h
  Real kinetic_energy = 0;       // integral of h * K
  Real potential_energy = 0;     // integral of g h (h/2 + b)
  Real total_energy = 0;
  Real potential_enstrophy = 0;  // integral of h_v * q^2 / 2
  Real h_min = 0, h_max = 0;

  /// Relative drift of each conserved quantity against `initial`.
  [[nodiscard]] Real mass_drift(const Invariants& initial) const;
  [[nodiscard]] Real energy_drift(const Invariants& initial) const;
  [[nodiscard]] Real enstrophy_drift(const Invariants& initial) const;
};

/// Compute invariants from the current prognostic state (H, U, Bottom).
/// Does not require diagnostics to be up to date: everything needed is
/// derived locally from H and U.
Invariants compute_invariants(const mesh::VoronoiMesh& mesh,
                              const FieldStore& fields);

}  // namespace mpas::sw
