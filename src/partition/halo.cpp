#include "partition/halo.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.hpp"

namespace mpas::partition {

namespace {

/// Copy the global mesh's per-entity data into the local view, remapping
/// connectivity. Absent entities become kInvalidIndex.
void fill_local_arrays(const mesh::VoronoiMesh& g, LocalMesh& lm,
                       const std::vector<Index>& cells,
                       const std::vector<Index>& edges,
                       const std::vector<Index>& vertices) {
  mesh::VoronoiMesh& m = lm.mesh;
  m.num_cells = static_cast<Index>(cells.size());
  m.num_edges = static_cast<Index>(edges.size());
  m.num_vertices = static_cast<Index>(vertices.size());
  m.sphere_radius = g.sphere_radius;
  m.subdivision_level = g.subdivision_level;

  std::unordered_map<GlobalIndex, Index> vertex_local;
  for (Index i = 0; i < m.num_cells; ++i) lm.cell_local[cells[i]] = i;
  for (Index i = 0; i < m.num_edges; ++i) lm.edge_local[edges[i]] = i;
  for (Index i = 0; i < m.num_vertices; ++i) vertex_local[vertices[i]] = i;

  auto lcell = [&](Index gc) {
    auto it = lm.cell_local.find(gc);
    return it == lm.cell_local.end() ? kInvalidIndex : it->second;
  };
  auto ledge = [&](Index ge) {
    auto it = lm.edge_local.find(ge);
    return it == lm.edge_local.end() ? kInvalidIndex : it->second;
  };
  auto lvertex = [&](Index gv) {
    auto it = vertex_local.find(gv);
    return it == vertex_local.end() ? kInvalidIndex : it->second;
  };

  m.global_cell_id.assign(cells.begin(), cells.end());
  m.global_edge_id.assign(edges.begin(), edges.end());
  m.global_vertex_id.assign(vertices.begin(), vertices.end());

  // --- cells -----------------------------------------------------------
  const Index me = mesh::VoronoiMesh::kMaxEdges;
  m.x_cell.resize(cells.size());
  m.n_edges_on_cell.resize(cells.size());
  m.edges_on_cell.resize(m.num_cells, me, kInvalidIndex);
  m.cells_on_cell.resize(m.num_cells, me, kInvalidIndex);
  m.vertices_on_cell.resize(m.num_cells, me, kInvalidIndex);
  m.edge_sign_on_cell.resize(m.num_cells, me, 0.0);
  m.kite_areas_on_cell.resize(m.num_cells, me, 0.0);
  m.area_cell.resize(cells.size());
  m.f_cell.resize(cells.size());
  m.lat_cell.resize(cells.size());
  m.lon_cell.resize(cells.size());
  for (Index i = 0; i < m.num_cells; ++i) {
    const Index gc = cells[i];
    m.x_cell[i] = g.x_cell[gc];
    m.n_edges_on_cell[i] = g.n_edges_on_cell[gc];
    m.area_cell[i] = g.area_cell[gc];
    m.f_cell[i] = g.f_cell[gc];
    m.lat_cell[i] = g.lat_cell[gc];
    m.lon_cell[i] = g.lon_cell[gc];
    for (Index j = 0; j < g.n_edges_on_cell[gc]; ++j) {
      m.edges_on_cell(i, j) = ledge(g.edges_on_cell(gc, j));
      m.cells_on_cell(i, j) = lcell(g.cells_on_cell(gc, j));
      m.vertices_on_cell(i, j) = lvertex(g.vertices_on_cell(gc, j));
      m.edge_sign_on_cell(i, j) = g.edge_sign_on_cell(gc, j);
      m.kite_areas_on_cell(i, j) = g.kite_areas_on_cell(gc, j);
    }
  }

  // --- edges -----------------------------------------------------------
  const Index meoe = mesh::VoronoiMesh::kMaxEdgesOnEdge;
  m.x_edge.resize(edges.size());
  m.cells_on_edge.resize(m.num_edges, 2, kInvalidIndex);
  m.vertices_on_edge.resize(m.num_edges, 2, kInvalidIndex);
  m.n_edges_on_edge.resize(edges.size());
  m.edges_on_edge.resize(m.num_edges, meoe, kInvalidIndex);
  m.weights_on_edge.resize(m.num_edges, meoe, 0.0);
  m.dc_edge.resize(edges.size());
  m.dv_edge.resize(edges.size());
  m.f_edge.resize(edges.size());
  m.lat_edge.resize(edges.size());
  m.lon_edge.resize(edges.size());
  m.boundary_edge.resize(edges.size());
  m.edge_normal.resize(edges.size());
  m.edge_tangent.resize(edges.size());
  for (Index i = 0; i < m.num_edges; ++i) {
    const Index ge = edges[i];
    m.x_edge[i] = g.x_edge[ge];
    m.dc_edge[i] = g.dc_edge[ge];
    m.dv_edge[i] = g.dv_edge[ge];
    m.f_edge[i] = g.f_edge[ge];
    m.lat_edge[i] = g.lat_edge[ge];
    m.lon_edge[i] = g.lon_edge[ge];
    m.boundary_edge[i] = g.boundary_edge[ge];
    m.edge_normal[i] = g.edge_normal[ge];
    m.edge_tangent[i] = g.edge_tangent[ge];
    for (int k = 0; k < 2; ++k) {
      m.cells_on_edge(i, k) = lcell(g.cells_on_edge(ge, k));
      m.vertices_on_edge(i, k) = lvertex(g.vertices_on_edge(ge, k));
    }
    m.n_edges_on_edge[i] = g.n_edges_on_edge[ge];
    for (Index j = 0; j < g.n_edges_on_edge[ge]; ++j) {
      m.edges_on_edge(i, j) = ledge(g.edges_on_edge(ge, j));
      m.weights_on_edge(i, j) = g.weights_on_edge(ge, j);
    }
  }

  // --- vertices ----------------------------------------------------------
  const int vd = mesh::VoronoiMesh::kVertexDegree;
  m.x_vertex.resize(vertices.size());
  m.cells_on_vertex.resize(m.num_vertices, vd, kInvalidIndex);
  m.edges_on_vertex.resize(m.num_vertices, vd, kInvalidIndex);
  m.edge_sign_on_vertex.resize(m.num_vertices, vd, 0.0);
  m.kite_areas_on_vertex.resize(m.num_vertices, vd, 0.0);
  m.area_triangle.resize(vertices.size());
  m.f_vertex.resize(vertices.size());
  m.lat_vertex.resize(vertices.size());
  m.lon_vertex.resize(vertices.size());
  for (Index i = 0; i < m.num_vertices; ++i) {
    const Index gv = vertices[i];
    m.x_vertex[i] = g.x_vertex[gv];
    m.area_triangle[i] = g.area_triangle[gv];
    m.f_vertex[i] = g.f_vertex[gv];
    m.lat_vertex[i] = g.lat_vertex[gv];
    m.lon_vertex[i] = g.lon_vertex[gv];
    for (int j = 0; j < vd; ++j) {
      m.cells_on_vertex(i, j) = lcell(g.cells_on_vertex(gv, j));
      m.edges_on_vertex(i, j) = ledge(g.edges_on_vertex(gv, j));
      m.edge_sign_on_vertex(i, j) = g.edge_sign_on_vertex(gv, j);
      m.kite_areas_on_vertex(i, j) = g.kite_areas_on_vertex(gv, j);
    }
  }
}

}  // namespace

LocalMesh build_local_mesh(const mesh::VoronoiMesh& g, const Partition& part,
                           int rank, int halo_layers) {
  MPAS_CHECK_MSG(halo_layers >= 2, "kernel ranges require >= 2 halo layers");
  MPAS_CHECK(rank >= 0 && rank < part.num_parts);

  LocalMesh lm;
  lm.rank = rank;

  // --- cell layers by BFS from the owned set ------------------------------
  std::vector<int> layer(static_cast<std::size_t>(g.num_cells), -1);
  std::vector<Index> cells;  // concatenated layers, each sorted by global id
  std::vector<Index> frontier = part.cells_of[static_cast<std::size_t>(rank)];
  std::sort(frontier.begin(), frontier.end());
  for (Index c : frontier) layer[static_cast<std::size_t>(c)] = 0;
  cells = frontier;
  lm.num_owned_cells = static_cast<Index>(frontier.size());

  for (int l = 1; l <= halo_layers; ++l) {
    std::set<Index> next;
    for (Index c : frontier)
      for (Index j = 0; j < g.n_edges_on_cell[c]; ++j) {
        const Index n = g.cells_on_cell(c, j);
        if (layer[static_cast<std::size_t>(n)] < 0) next.insert(n);
      }
    frontier.assign(next.begin(), next.end());
    for (Index c : frontier) layer[static_cast<std::size_t>(c)] = l;
    cells.insert(cells.end(), frontier.begin(), frontier.end());
    if (l == 1)
      lm.num_compute_cells =
          static_cast<Index>(cells.size());  // L0 + L1 prefix
  }

  lm.cell_layer.reserve(cells.size());
  for (Index c : cells)
    lm.cell_layer.push_back(layer[static_cast<std::size_t>(c)]);

  // --- edge classes ---------------------------------------------------------
  auto is_local_cell = [&](Index c) {
    return layer[static_cast<std::size_t>(c)] >= 0;
  };
  std::set<Index> edge_set;
  for (Index c : cells)
    for (Index j = 0; j < g.n_edges_on_cell[c]; ++j)
      edge_set.insert(g.edges_on_cell(c, j));

  auto edge_class = [&](Index e) {
    const Index c0 = g.cells_on_edge(e, 0);
    const Index c1 = g.cells_on_edge(e, 1);
    if (part.owner_of_edge(g, e) == rank) return 0;  // owned
    if (!is_local_cell(c0) || !is_local_cell(c1)) return 3;  // ghost
    const int l0 = layer[static_cast<std::size_t>(c0)];
    const int l1 = layer[static_cast<std::size_t>(c1)];
    if (l0 <= 1 && l1 <= 1) return 1;  // inner-compute (pv_edge range)
    return 2;                          // compute (h_edge/v ranges)
  };

  std::vector<Index> edges(edge_set.begin(), edge_set.end());
  std::stable_sort(edges.begin(), edges.end(), [&](Index a, Index b) {
    const int ca = edge_class(a), cb = edge_class(b);
    return ca < cb || (ca == cb && a < b);
  });
  for (Index e : edges) {
    const int c = edge_class(e);
    if (c == 0) ++lm.num_owned_edges;
    if (c <= 1) ++lm.num_inner_edges;
    if (c <= 2) ++lm.num_compute_edges;
  }
  // Owned edges must be inner-computable: their min-global cell is owned
  // here, so the other cell is in layer <= 1.
  for (Index i = 0; i < lm.num_owned_edges; ++i)
    MPAS_CHECK(edge_class(edges[static_cast<std::size_t>(i)]) == 0);

  // --- vertices ---------------------------------------------------------------
  auto vertex_complete = [&](Index v) {
    for (int j = 0; j < mesh::VoronoiMesh::kVertexDegree; ++j)
      if (!is_local_cell(g.cells_on_vertex(v, j))) return false;
    return true;
  };
  std::set<Index> vertex_set;
  for (Index c : cells)
    for (Index j = 0; j < g.n_edges_on_cell[c]; ++j)
      vertex_set.insert(g.vertices_on_cell(c, j));
  std::vector<Index> vertices(vertex_set.begin(), vertex_set.end());
  std::stable_sort(vertices.begin(), vertices.end(), [&](Index a, Index b) {
    const int ca = vertex_complete(a) ? 0 : 1;
    const int cb = vertex_complete(b) ? 0 : 1;
    return ca < cb || (ca == cb && a < b);
  });
  for (Index v : vertices)
    if (vertex_complete(v)) ++lm.num_compute_vertices;

  fill_local_arrays(g, lm, cells, edges, vertices);
  return lm;
}

std::int64_t ExchangePlan::recv_cell_count() const {
  std::int64_t n = 0;
  for (const auto& p : peers) n += static_cast<std::int64_t>(p.recv_cells.size());
  return n;
}

std::int64_t ExchangePlan::recv_edge_count() const {
  std::int64_t n = 0;
  for (const auto& p : peers) n += static_cast<std::int64_t>(p.recv_edges.size());
  return n;
}

std::int64_t ExchangePlan::halo_bytes(MeshLocation loc) const {
  switch (loc) {
    case MeshLocation::Cell:
      return recv_cell_count() * static_cast<std::int64_t>(sizeof(Real));
    case MeshLocation::Edge:
      return recv_edge_count() * static_cast<std::int64_t>(sizeof(Real));
    default: return 0;
  }
}

HaloStats compute_halo_stats(const mesh::VoronoiMesh& g, const Partition& part,
                             int rank, int halo_layers) {
  HaloStats s;
  std::unordered_map<Index, int> layer;
  std::vector<Index> frontier = part.cells_of[static_cast<std::size_t>(rank)];
  for (Index c : frontier) layer.emplace(c, 0);
  s.owned_cells = static_cast<Index>(frontier.size());
  for (int l = 1; l <= halo_layers; ++l) {
    std::set<Index> next;
    for (Index c : frontier)
      for (Index j = 0; j < g.n_edges_on_cell[c]; ++j) {
        const Index n = g.cells_on_cell(c, j);
        if (!layer.count(n)) next.insert(n);
      }
    frontier.assign(next.begin(), next.end());
    for (Index c : frontier) layer.emplace(c, l);
    s.halo_cells += static_cast<Index>(frontier.size());
    if (l == 1) s.compute_cells = s.owned_cells + static_cast<Index>(frontier.size());
  }

  std::set<Index> edges;
  std::set<int> neighbor_ranks;
  for (const auto& [c, l] : layer)
    for (Index j = 0; j < g.n_edges_on_cell[c]; ++j)
      edges.insert(g.edges_on_cell(c, j));
  for (Index e : edges) {
    if (part.owner_of_edge(g, e) == rank) ++s.owned_edges;
    else ++s.halo_edges;
  }
  for (const auto& [c, l] : layer) {
    const int o = part.owner_of_cell[static_cast<std::size_t>(c)];
    if (o != rank) neighbor_ranks.insert(o);
  }
  s.neighbors = static_cast<int>(neighbor_ranks.size());
  return s;
}

HaloStats worst_rank_halo_stats(const mesh::VoronoiMesh& g,
                                const Partition& part, int halo_layers) {
  int worst = 0;
  std::size_t most = 0;
  for (int r = 0; r < part.num_parts; ++r) {
    if (part.cells_of[static_cast<std::size_t>(r)].size() > most) {
      most = part.cells_of[static_cast<std::size_t>(r)].size();
      worst = r;
    }
  }
  return compute_halo_stats(g, part, worst, halo_layers);
}

std::vector<ExchangePlan> build_exchange_plans(
    const mesh::VoronoiMesh& global, const Partition& part,
    const std::vector<LocalMesh>& locals) {
  MPAS_CHECK(static_cast<int>(locals.size()) == part.num_parts);
  std::vector<ExchangePlan> plans(locals.size());
  // peer_map[r][o] -> index in plans[r].peers
  std::vector<std::map<int, std::size_t>> peer_of(locals.size());

  auto peer = [&](int r, int o) -> ExchangePlan::Peer& {
    auto& pm = peer_of[static_cast<std::size_t>(r)];
    auto it = pm.find(o);
    if (it == pm.end()) {
      plans[static_cast<std::size_t>(r)].peers.push_back({o, {}, {}, {}, {}});
      it = pm.emplace(o, plans[static_cast<std::size_t>(r)].peers.size() - 1)
               .first;
    }
    return plans[static_cast<std::size_t>(r)].peers[it->second];
  };

  for (int r = 0; r < part.num_parts; ++r) {
    const LocalMesh& lm = locals[static_cast<std::size_t>(r)];
    // Halo cells (everything past the owned prefix), in local order — both
    // sides push entries in the same (receiver, ascending local == global
    // order within layer groups) sequence, keeping lists index-aligned.
    for (Index i = lm.num_owned_cells; i < lm.mesh.num_cells; ++i) {
      const auto gc = lm.mesh.global_cell_id[static_cast<std::size_t>(i)];
      const int o = part.owner_of_cell[static_cast<std::size_t>(gc)];
      MPAS_CHECK(o != r);
      const LocalMesh& om = locals[static_cast<std::size_t>(o)];
      auto it = om.cell_local.find(gc);
      MPAS_CHECK_MSG(it != om.cell_local.end(),
                     "owner rank lost cell " << gc);
      peer(r, o).recv_cells.push_back(i);
      peer(o, r).send_cells.push_back(it->second);
    }
    for (Index i = lm.num_owned_edges; i < lm.mesh.num_edges; ++i) {
      const auto ge = lm.mesh.global_edge_id[static_cast<std::size_t>(i)];
      const int o = part.owner_of_edge(global, static_cast<Index>(ge));
      MPAS_CHECK(o != r);
      const LocalMesh& om = locals[static_cast<std::size_t>(o)];
      auto it = om.edge_local.find(ge);
      MPAS_CHECK_MSG(it != om.edge_local.end(),
                     "owner rank lost edge " << ge);
      peer(r, o).recv_edges.push_back(i);
      peer(o, r).send_edges.push_back(it->second);
    }
  }
  return plans;
}

}  // namespace mpas::partition
