file(REMOVE_RECURSE
  "CMakeFiles/table3_meshes.dir/table3_meshes.cpp.o"
  "CMakeFiles/table3_meshes.dir/table3_meshes.cpp.o.d"
  "table3_meshes"
  "table3_meshes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_meshes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
