// Field output for visualization and restart.
//
//  * write_vtk: legacy-VTK PolyData of the Voronoi cells (polygons built
//    from the dual-triangle circumcenters) with any set of cell-centred
//    fields attached — loadable directly in ParaView/VisIt.
//  * save_state / load_state: binary checkpoint of the prognostic state
//    (H, U, Bottom) with mesh-compatibility checks, enabling restart runs
//    that continue bit-for-bit (RK-4 needs no history).
#pragma once

#include <string>
#include <vector>

#include "sw/fields.hpp"

namespace mpas::sw {

/// Write the mesh and the given cell-centred fields to a legacy VTK file.
/// Throws on I/O failure or if any field is not cell-centred.
void write_vtk(const std::string& path, const mesh::VoronoiMesh& mesh,
               const FieldStore& fields, const std::vector<FieldId>& cell_fields);

/// Checkpoint the prognostic state (H, U, Bottom).
void save_state(const std::string& path, const FieldStore& fields);

/// Restore a checkpoint into `fields`. Throws if the file does not match
/// this mesh's entity counts. Diagnostics must be recomputed afterwards
/// (call SwModel::initialize() / ReferenceIntegrator::initialize()).
void load_state(const std::string& path, FieldStore& fields);

}  // namespace mpas::sw
