#include "core/dataflow.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace mpas::core {

const char* to_string(PatternKind k) {
  switch (k) {
    case PatternKind::A: return "A";
    case PatternKind::B: return "B";
    case PatternKind::C: return "C";
    case PatternKind::D: return "D";
    case PatternKind::E: return "E";
    case PatternKind::F: return "F";
    case PatternKind::G: return "G";
    case PatternKind::H: return "H";
    case PatternKind::Local: return "X";
  }
  return "?";
}

const char* pattern_description(PatternKind k) {
  switch (k) {
    case PatternKind::A: return "mass point from surrounding velocity points";
    case PatternKind::B: return "mass point from neighbouring mass points";
    case PatternKind::C: return "velocity point from its two mass points";
    case PatternKind::D: return "vorticity point from its three velocity points";
    case PatternKind::E: return "vorticity point from its three mass points";
    case PatternKind::F: return "velocity point from the edges of both cells";
    case PatternKind::G: return "velocity point from its two vorticity points";
    case PatternKind::H: return "mass point from its surrounding vorticity points";
    case PatternKind::Local: return "local computation (no neighbour access)";
  }
  return "?";
}

const char* to_string(KernelGroup k) {
  switch (k) {
    case KernelGroup::ComputeTend: return "compute_tend";
    case KernelGroup::EnforceBoundaryEdge: return "enforce_boundary_edge";
    case KernelGroup::ComputeNextSubstepState:
      return "compute_next_substep_state";
    case KernelGroup::ComputeSolveDiagnostics:
      return "compute_solve_diagnostics";
    case KernelGroup::AccumulativeUpdate: return "accumulative_update";
    case KernelGroup::MpasReconstruct: return "mpas_reconstruct";
    case KernelGroup::StepSetup: return "step_setup";
    case KernelGroup::Count: break;
  }
  return "?";
}

int DataflowGraph::add_node(PatternNode node) {
  MPAS_CHECK_MSG(!finalized_, "graph already finalized");
  MPAS_CHECK(!node.label.empty());
  MPAS_CHECK(!node.outputs.empty());
  node.id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  halo_after_.push_back(0);
  return nodes_.back().id;
}

void DataflowGraph::add_halo_sync_after(int node_id) {
  MPAS_CHECK(node_id >= 0 && node_id < num_nodes());
  halo_after_[node_id] = 1;
}

const PatternNode& DataflowGraph::node(int id) const {
  MPAS_CHECK_MSG(id >= 0 && id < num_nodes(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

PatternNode& DataflowGraph::mutate_node(int id) {
  MPAS_CHECK_MSG(id >= 0 && id < num_nodes(), "node id out of range");
  if (finalized_) {
    // The caller may change the field sets, which would silently invalidate
    // every derived edge — drop them and require a re-finalize.
    succ_.clear();
    pred_.clear();
    finalized_ = false;
  }
  return nodes_[static_cast<std::size_t>(id)];
}

const std::vector<int>& DataflowGraph::successors(int id) const {
  MPAS_CHECK_MSG(finalized_, "graph not finalized");
  MPAS_CHECK_MSG(id >= 0 && id < num_nodes(), "node id out of range");
  return succ_[static_cast<std::size_t>(id)];
}

const std::vector<int>& DataflowGraph::predecessors(int id) const {
  MPAS_CHECK_MSG(finalized_, "graph not finalized");
  MPAS_CHECK_MSG(id >= 0 && id < num_nodes(), "node id out of range");
  return pred_[static_cast<std::size_t>(id)];
}

bool DataflowGraph::has_halo_sync_after(int id) const {
  MPAS_CHECK_MSG(id >= 0 && id < num_nodes(), "node id out of range");
  return halo_after_[static_cast<std::size_t>(id)] != 0;
}

void DataflowGraph::finalize() {
  MPAS_CHECK(!finalized_);
  const int n = num_nodes();
  succ_.assign(n, {});
  pred_.assign(n, {});

  std::map<std::string, int> last_writer;
  std::map<std::string, std::vector<int>> readers_since_write;
  std::vector<std::set<int>> pred_sets(n);

  for (int i = 0; i < n; ++i) {
    const PatternNode& node = nodes_[i];
    for (const std::string& in : node.inputs) {
      // RAW: depend on the last writer (if the variable was produced
      // earlier in this program; otherwise it is an incoming value).
      auto it = last_writer.find(in);
      if (it != last_writer.end() && it->second != i)
        pred_sets[i].insert(it->second);
      readers_since_write[in].push_back(i);
    }
    for (const std::string& out : node.outputs) {
      // WAW: a later writer waits for the earlier one.
      auto it = last_writer.find(out);
      if (it != last_writer.end() && it->second != i)
        pred_sets[i].insert(it->second);
      // WAR: a writer waits for all readers of the previous value.
      for (int reader : readers_since_write[out])
        if (reader != i) pred_sets[i].insert(reader);
      readers_since_write[out].clear();
      last_writer[out] = i;
    }
  }

  for (int i = 0; i < n; ++i) {
    for (int p : pred_sets[i]) {
      pred_[i].push_back(p);
      succ_[p].push_back(i);
    }
    std::sort(pred_[i].begin(), pred_[i].end());
  }
  for (auto& s : succ_) std::sort(s.begin(), s.end());
  finalized_ = true;
}

std::vector<int> DataflowGraph::topological_order() const {
  MPAS_CHECK(finalized_);
  // Insertion order is program order; every dependency points backwards,
  // so it is already topological. (Checked here for safety.)
  std::vector<int> order(nodes_.size());
  for (int i = 0; i < num_nodes(); ++i) {
    order[i] = i;
    for (int p : pred_[i]) MPAS_CHECK(p < i);
  }
  return order;
}

std::vector<int> DataflowGraph::levels() const {
  MPAS_CHECK(finalized_);
  std::vector<int> level(nodes_.size(), 0);
  for (int i = 0; i < num_nodes(); ++i)
    for (int p : pred_[i]) level[i] = std::max(level[i], level[p] + 1);
  return level;
}

Real DataflowGraph::critical_path(const std::vector<Real>& node_cost) const {
  MPAS_CHECK(finalized_);
  MPAS_CHECK(node_cost.size() == nodes_.size());
  std::vector<Real> finish(nodes_.size(), 0);
  Real best = 0;
  for (int i = 0; i < num_nodes(); ++i) {
    Real start = 0;
    for (int p : pred_[i]) start = std::max(start, finish[p]);
    finish[i] = start + node_cost[i];
    best = std::max(best, finish[i]);
  }
  return best;
}

std::vector<std::vector<int>> DataflowGraph::independent_sets() const {
  const std::vector<int> lvl = levels();
  if (lvl.empty()) return {};
  const int max_level = *std::max_element(lvl.begin(), lvl.end());
  std::vector<std::vector<int>> sets(static_cast<std::size_t>(max_level) + 1);
  for (int i = 0; i < num_nodes(); ++i) sets[lvl[i]].push_back(i);
  return sets;
}

std::string DataflowGraph::to_dot() const {
  MPAS_CHECK(finalized_);
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n  rankdir=TB;\n  node [shape=box];\n";

  // Cluster nodes by kernel, like the grey boxes of Figure 4.
  std::map<KernelGroup, std::vector<int>> by_kernel;
  for (const auto& node : nodes_) by_kernel[node.kernel].push_back(node.id);
  int cluster = 0;
  for (const auto& [kernel, ids] : by_kernel) {
    os << "  subgraph cluster_" << cluster++ << " {\n    label=\""
       << to_string(kernel) << "\";\n";
    for (int id : ids) {
      const auto& node = nodes_[id];
      os << "    n" << id << " [label=\"" << node.label << "\\n"
         << to_string(node.kind) << ": " << to_string(node.iterates)
         << (node.kind == PatternKind::Local ? "" : " stencil") << "\""
         << (node.kind == PatternKind::Local ? ", shape=box"
                                             : ", shape=ellipse")
         << "];\n";
    }
    os << "  }\n";
  }
  for (int i = 0; i < num_nodes(); ++i) {
    for (int s : succ_[i]) os << "  n" << i << " -> n" << s << ";\n";
    if (halo_after_[i])
      os << "  n" << i
         << " -> halo" << i
         << " [color=red];\n  halo" << i
         << " [label=\"Exchange halo\", color=red, shape=diamond];\n";
  }
  os << "}\n";
  return os.str();
}

std::string DataflowGraph::to_json() const {
  MPAS_CHECK(finalized_);
  using obs::json_escape;
  const std::vector<int> lvl = levels();
  std::ostringstream os;
  os << "{\n  \"name\": \"" << json_escape(name_) << "\",\n  \"nodes\": [\n";
  for (int i = 0; i < num_nodes(); ++i) {
    const PatternNode& node = nodes_[static_cast<std::size_t>(i)];
    os << "    {\"id\": " << node.id << ", \"label\": \""
       << json_escape(node.label) << "\", \"pattern_class\": \""
       << to_string(node.kind) << "\", \"pattern_description\": \""
       << json_escape(pattern_description(node.kind)) << "\", \"kernel\": \""
       << to_string(node.kernel) << "\", \"iterates\": \""
       << to_string(node.iterates) << "\", \"level\": "
       << lvl[static_cast<std::size_t>(i)] << ", \"splittable\": "
       << (node.splittable ? "true" : "false") << ",\n     \"inputs\": [";
    for (std::size_t k = 0; k < node.inputs.size(); ++k)
      os << (k ? ", " : "") << '"' << json_escape(node.inputs[k]) << '"';
    os << "], \"outputs\": [";
    for (std::size_t k = 0; k < node.outputs.size(); ++k)
      os << (k ? ", " : "") << '"' << json_escape(node.outputs[k]) << '"';
    os << "]}" << (i + 1 < num_nodes() ? "," : "") << "\n";
  }
  os << "  ],\n  \"edges\": [\n";
  bool first = true;
  for (int i = 0; i < num_nodes(); ++i) {
    for (int s : succ_[static_cast<std::size_t>(i)]) {
      os << (first ? "" : ",\n") << "    {\"from\": " << i
         << ", \"to\": " << s << "}";
      first = false;
    }
  }
  os << "\n  ],\n  \"halo_sync_after\": [";
  first = true;
  for (int i = 0; i < num_nodes(); ++i) {
    if (!halo_after_[static_cast<std::size_t>(i)]) continue;
    os << (first ? "" : ", ") << i;
    first = false;
  }
  os << "]\n}\n";
  return os.str();
}

}  // namespace mpas::core
