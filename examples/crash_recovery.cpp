// crash_recovery: the two halves of the kill -9 drill CI runs.
//
//   mode=run     build a durable SessionManager (MPAS_CHECKPOINT_* env
//                knobs), submit one long session, and run it to the end.
//                This is the victim: the driver script watches the journal
//                for the first durable progress mark and then SIGKILLs the
//                process mid-run. If nobody kills it, it finishes and
//                exits 0 only when the result is bitwise-correct.
//
//   mode=resume  restart the service over the same MPAS_CHECKPOINT_DIR.
//                The constructor's recovery replays the journal, re-admits
//                every session the dead epoch left incomplete, and resumes
//                each from its newest intact checkpoint generation. Exits
//                non-zero when anything stays incomplete, any recovered
//                session fails to complete, any trajectory diverges from
//                the uninterrupted reference bits, or fewer than
//                require_recovered= sessions were recovered.
//
// Run:  MPAS_CHECKPOINT_DIR=/tmp/ckpt ./crash_recovery mode=run
//           [steps=4000] [level=2] [case=2] [tenant=chaos] [workers=1]
//       MPAS_CHECKPOINT_DIR=/tmp/ckpt ./crash_recovery mode=resume
//           [require_recovered=1] [workers=1]
//
// Deterministic by construction: the resumed trajectory must land on the
// same bits as the never-interrupted run, so the drill has exactly one
// right answer.
#include <cstdio>
#include <string>

#include "service/session.hpp"
#include "service/session_manager.hpp"
#include "util/config.hpp"

using namespace mpas;
using service::ServiceOptions;
using service::SessionManager;
using service::SessionRequest;
using service::SessionResult;
using service::SessionState;

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) g_failures += 1;
}

ServiceOptions service_options(int workers) {
  ServiceOptions opts;
  opts.workers = workers;
  // The drill is about durability, not admission: price nothing out.
  opts.admission.capacity_modeled_s = 1e9;
  return opts;
}

int run_victim(const Config& cfg) {
  SessionRequest req;
  req.tenant = cfg.get_string("tenant", "chaos");
  req.mesh_level = static_cast<int>(cfg.get_int("level", 2));
  req.test_case = static_cast<int>(cfg.get_int("case", 2));
  req.steps = static_cast<int>(cfg.get_int("steps", 4000));
  req.output_every = static_cast<int>(cfg.get_int("output_every", 100));

  SessionManager manager(
      service_options(static_cast<int>(cfg.get_int("workers", 1))));
  std::printf("victim: session of %d steps on level %d (checkpoint dir %s, "
              "every %d)\n",
              req.steps, req.mesh_level, manager.durability().dir.c_str(),
              manager.durability().every);
  const std::uint64_t id = manager.submit(req);
  manager.drain();

  // Only reached when nobody killed us: the un-interrupted control run.
  const SessionResult result = manager.result(id);
  check(result.state == SessionState::Completed,
        "uninterrupted run completed (" + result.reason + ")");
  check(!result.diverged, "uninterrupted run is bitwise-correct");
  return g_failures == 0 ? 0 : 1;
}

int run_resume(const Config& cfg) {
  const long require = cfg.get_int("require_recovered", 1);
  SessionManager manager(
      service_options(static_cast<int>(cfg.get_int("workers", 1))));
  std::printf("resume: %zu session(s) recovered from %s\n",
              manager.recoveries().size(), manager.durability().dir.c_str());
  check(static_cast<long>(manager.recoveries().size()) >= require,
        "recovered >= " + std::to_string(require) + " session(s)");
  for (const auto& outcome : manager.recoveries()) {
    check(outcome.readmitted,
          "session " + std::to_string(outcome.old_id) + " (epoch " +
              std::to_string(outcome.old_epoch) + ") re-admitted");
    std::printf("  session %llu resumes from step %lld (%d damaged "
                "generation(s) skipped)\n",
                static_cast<unsigned long long>(outcome.new_id),
                static_cast<long long>(outcome.resumed_from_step),
                outcome.fallbacks);
  }
  manager.drain();

  for (const auto& outcome : manager.recoveries()) {
    if (!outcome.readmitted) continue;
    const SessionResult result = manager.result(outcome.new_id);
    const std::string tag = "recovered session " +
                            std::to_string(outcome.new_id);
    check(result.state == SessionState::Completed,
          tag + " completed (" + result.reason + ")");
    check(result.recovered, tag + " marked recovered");
    check(!result.diverged,
          tag + " bitwise-identical to the uninterrupted reference");
  }
  check(manager.stats().recovered_diverged == 0, "no diverged recoveries");
  return g_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::string mode = cfg.get_string("mode", "run");
  if (service::DurabilityPolicy::from_env().dir.empty()) {
    std::fprintf(stderr,
                 "crash_recovery: MPAS_CHECKPOINT_DIR must be set\n");
    return 2;
  }
  if (mode == "run") return run_victim(cfg);
  if (mode == "resume") return run_resume(cfg);
  std::fprintf(stderr, "crash_recovery: unknown mode '%s'\n", mode.c_str());
  return 2;
}
