// Regenerates Table II: the modeled platform configuration. Datasheet rows
// come straight from the DeviceSpec presets the machine model uses, so this
// bench doubles as a check that the model's inputs match the paper's table.
#include <cstdio>

#include "bench_common.hpp"

using namespace mpas;

int main(int argc, char** argv) {
  bench::bench_init(argc, argv, "table2_platform");
  std::printf("== Table II: configuration of the (modeled) test platform ==\n\n");

  const machine::Platform p = machine::paper_platform();
  Table t({"property", p.host.name, p.accelerator.name});
  auto row = [&](const char* k, const std::string& a, const std::string& b) {
    t.add_row({k, a, b});
  };
  auto num = [](Real v, int prec = 1) { return Table::fixed(v, prec); };

  row("Frequency (GHz)", num(p.host.freq_ghz), num(p.accelerator.freq_ghz, 3));
  row("Cores / Threads", std::to_string(p.host.cores) + " / " +
                             std::to_string(p.host.cores * p.host.threads_per_core),
      std::to_string(p.accelerator.cores) + " / " +
          std::to_string(p.accelerator.cores * p.accelerator.threads_per_core));
  row("SIMD width (doubles)", std::to_string(p.host.simd_width_dp),
      std::to_string(p.accelerator.simd_width_dp));
  row("Instruction set", "AVX", "IMCI");
  row("Peak Gflop/s (DP)", num(p.host.peak_gflops()),
      num(p.accelerator.peak_gflops()));
  row("STREAM bandwidth (GB/s)", num(p.host.stream_bw_gbs),
      num(p.accelerator.stream_bw_gbs));
  row("Serial gather BW (GB/s)", num(p.host.serial_gather_bw_gbs, 2),
      num(p.accelerator.serial_gather_bw_gbs, 2));
  row("Parallel region overhead (us)", num(p.host.region_overhead_us),
      num(p.accelerator.region_overhead_us));
  row("Reserved cores (offload daemon)", std::to_string(p.host.reserved_cores),
      std::to_string(p.accelerator.reserved_cores));
  bench::emit(t, "table2_platform");
  bench::add_info("host_peak_gflops", p.host.peak_gflops(), "Gflop/s");
  bench::add_info("accel_peak_gflops", p.accelerator.peak_gflops(), "Gflop/s");
  bench::add_info("host_stream_bw", p.host.stream_bw_gbs, "GB/s");
  bench::add_info("accel_stream_bw", p.accelerator.stream_bw_gbs, "GB/s");
  bench::add_info("link_bw", p.link.bandwidth_gbs, "GB/s");

  std::printf("Host<->device link: PCIe, %.1f GB/s, %.1f us latency\n",
              p.link.bandwidth_gbs, p.link.latency_us);
  std::printf("Network: FDR InfiniBand, %.1f GB/s, %.1f us latency\n",
              p.network.bandwidth_gbs, p.network.latency_us);
  return 0;
}
