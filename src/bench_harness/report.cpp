#include "bench_harness/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"  // json_escape
#include "util/error.hpp"

namespace mpas::bench_harness {

namespace {

// ---- writing ----------------------------------------------------------------

std::string num(double v) {
  if (!std::isfinite(v)) return "0";  // schema has no use for NaN/Inf
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string str(const std::string& s) {
  return '"' + obs::json_escape(s) + '"';
}

void write_stats(std::ostringstream& os, const SampleStats& s) {
  os << "{\"count\":" << s.count << ",\"min\":" << num(s.min)
     << ",\"max\":" << num(s.max) << ",\"mean\":" << num(s.mean)
     << ",\"median\":" << num(s.median) << ",\"stddev\":" << num(s.stddev)
     << ",\"p25\":" << num(s.p25) << ",\"p75\":" << num(s.p75)
     << ",\"iqr\":" << num(s.iqr) << ",\"outliers\":" << s.outliers << "}";
}

void write_string_map(std::ostringstream& os,
                      const std::map<std::string, double>& map) {
  os << "{";
  bool first = true;
  for (const auto& [key, value] : map) {
    if (!first) os << ",";
    first = false;
    os << str(key) << ":" << num(value);
  }
  os << "}";
}

void write_attribution(std::ostringstream& os, const AttributionReport& a) {
  os << "{\"track\":" << str(a.track_name)
     << ",\"span_us\":" << num(a.span_us)
     << ",\"imbalance\":" << num(a.imbalance)
     << ",\"overlap_efficiency\":" << num(a.overlap_efficiency)
     << ",\"transfer_total_us\":" << num(a.transfer_total_us)
     << ",\"transfer_exposed_us\":" << num(a.transfer_exposed_us)
     << ",\"lanes\":[";
  for (std::size_t i = 0; i < a.lanes.size(); ++i) {
    const LaneUsage& lane = a.lanes[i];
    if (i) os << ",";
    os << "{\"lane\":" << lane.lane << ",\"name\":" << str(lane.name)
       << ",\"role\":" << str(to_string(lane.role))
       << ",\"busy_us\":" << num(lane.busy_us) << "}";
  }
  os << "],\"per_pattern_us\":";
  write_string_map(os, a.per_pattern_us);
  os << ",\"per_kernel_us\":";
  write_string_map(os, a.per_kernel_us);
  os << ",\"devices\":[";
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    const DeviceUtilization& d = a.devices[i];
    if (i) os << ",";
    os << "{\"device\":" << str(d.device) << ",\"busy_s\":" << num(d.busy_s)
       << ",\"flops\":" << num(d.flops) << ",\"bytes\":" << num(d.bytes)
       << ",\"achieved_gflops\":" << num(d.achieved_gflops)
       << ",\"peak_gflops\":" << num(d.peak_gflops)
       << ",\"achieved_gbs\":" << num(d.achieved_gbs)
       << ",\"peak_gbs\":" << num(d.peak_gbs)
       << ",\"flop_utilization\":" << num(d.flop_utilization)
       << ",\"bandwidth_utilization\":" << num(d.bandwidth_utilization)
       << ",\"roofline_utilization\":" << num(d.roofline_utilization)
       << "}";
  }
  os << "]}";
}

// ---- reading ----------------------------------------------------------------

Direction direction_from(const std::string& s) {
  if (s == "lower") return Direction::LowerIsBetter;
  if (s == "higher") return Direction::HigherIsBetter;
  if (s == "info") return Direction::Informational;
  throw std::runtime_error("bench report: unknown direction '" + s + "'");
}

SeriesKind kind_from(const std::string& s) {
  if (s == "modeled") return SeriesKind::Modeled;
  if (s == "measured") return SeriesKind::Measured;
  throw std::runtime_error("bench report: unknown series kind '" + s + "'");
}

LaneRole role_from(const std::string& s) {
  if (s == "compute") return LaneRole::Compute;
  if (s == "transfer") return LaneRole::Transfer;
  if (s == "comm") return LaneRole::Comm;
  if (s == "other") return LaneRole::Other;
  throw std::runtime_error("bench report: unknown lane role '" + s + "'");
}

SampleStats stats_from(const json::Value& v) {
  SampleStats s;
  s.count = static_cast<int>(v.at("count").as_number());
  s.min = v.at("min").as_number();
  s.max = v.at("max").as_number();
  s.mean = v.at("mean").as_number();
  s.median = v.at("median").as_number();
  s.stddev = v.at("stddev").as_number();
  s.p25 = v.at("p25").as_number();
  s.p75 = v.at("p75").as_number();
  s.iqr = v.at("iqr").as_number();
  s.outliers = static_cast<int>(v.at("outliers").as_number());
  return s;
}

std::map<std::string, double> string_map_from(const json::Value& v) {
  std::map<std::string, double> out;
  for (const auto& [key, value] : v.as_object())
    out.emplace(key, value.as_number());
  return out;
}

AttributionReport attribution_from(const json::Value& v) {
  AttributionReport a;
  a.track_name = v.at("track").as_string();
  a.span_us = v.at("span_us").as_number();
  a.imbalance = v.at("imbalance").as_number();
  a.overlap_efficiency = v.at("overlap_efficiency").as_number();
  a.transfer_total_us = v.at("transfer_total_us").as_number();
  a.transfer_exposed_us = v.at("transfer_exposed_us").as_number();
  for (const auto& lv : v.at("lanes").as_array()) {
    LaneUsage lane;
    lane.lane = static_cast<int>(lv.at("lane").as_number());
    lane.name = lv.at("name").as_string();
    lane.role = role_from(lv.at("role").as_string());
    lane.busy_us = lv.at("busy_us").as_number();
    a.lanes.push_back(std::move(lane));
  }
  a.per_pattern_us = string_map_from(v.at("per_pattern_us"));
  a.per_kernel_us = string_map_from(v.at("per_kernel_us"));
  for (const auto& dv : v.at("devices").as_array()) {
    DeviceUtilization d;
    d.device = dv.at("device").as_string();
    d.busy_s = dv.at("busy_s").as_number();
    d.flops = dv.at("flops").as_number();
    d.bytes = dv.at("bytes").as_number();
    d.achieved_gflops = dv.at("achieved_gflops").as_number();
    d.peak_gflops = dv.at("peak_gflops").as_number();
    d.achieved_gbs = dv.at("achieved_gbs").as_number();
    d.peak_gbs = dv.at("peak_gbs").as_number();
    d.flop_utilization = dv.at("flop_utilization").as_number();
    d.bandwidth_utilization = dv.at("bandwidth_utilization").as_number();
    d.roofline_utilization = dv.at("roofline_utilization").as_number();
    a.devices.push_back(std::move(d));
  }
  return a;
}

}  // namespace

const char* to_string(Direction d) {
  switch (d) {
    case Direction::LowerIsBetter: return "lower";
    case Direction::HigherIsBetter: return "higher";
    case Direction::Informational: return "info";
  }
  return "?";
}

const char* to_string(SeriesKind k) {
  switch (k) {
    case SeriesKind::Modeled: return "modeled";
    case SeriesKind::Measured: return "measured";
  }
  return "?";
}

void BenchReport::add_value(const std::string& name, double value,
                            const std::string& unit, SeriesKind kind,
                            Direction direction) {
  add_samples(name, {value}, unit, kind, direction);
}

void BenchReport::add_samples(const std::string& name,
                              std::vector<double> samples,
                              const std::string& unit, SeriesKind kind,
                              Direction direction) {
  MetricSeries s;
  s.name = name;
  s.unit = unit;
  s.kind = kind;
  s.direction = direction;
  s.stats = SampleStats::from_samples(samples);
  s.samples = std::move(samples);
  add_series(std::move(s));
}

void BenchReport::add_series(MetricSeries series) {
  MPAS_CHECK_MSG(find_series(series.name) == nullptr,
                 "duplicate bench series '" << series.name << "'");
  series_.push_back(std::move(series));
}

void BenchReport::add_table(const Table& table, const std::string& name) {
  TableDump dump;
  dump.name = name;
  dump.headers = table.headers();
  dump.rows = table.rows();
  tables_.push_back(std::move(dump));
}

void BenchReport::add_attribution(AttributionReport attribution) {
  attributions_.push_back(std::move(attribution));
}

const MetricSeries* BenchReport::find_series(const std::string& name) const {
  for (const MetricSeries& s : series_)
    if (s.name == name) return &s;
  return nullptr;
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":" << kReportSchemaVersion
     << ",\"suite\":" << str(suite_) << ",\"environment\":{"
     << "\"git_sha\":" << str(environment_.git_sha)
     << ",\"compiler\":" << str(environment_.compiler)
     << ",\"build_type\":" << str(environment_.build_type)
     << ",\"flags\":" << str(environment_.flags)
     << ",\"os\":" << str(environment_.os)
     << ",\"hardware_threads\":" << environment_.hardware_threads
     << ",\"machine_preset\":" << str(environment_.machine_preset)
     << ",\"mesh_level\":" << environment_.mesh_level << "}";

  os << ",\"series\":[";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const MetricSeries& s = series_[i];
    if (i) os << ",";
    os << "{\"name\":" << str(s.name) << ",\"unit\":" << str(s.unit)
       << ",\"kind\":" << str(to_string(s.kind))
       << ",\"direction\":" << str(to_string(s.direction)) << ",\"samples\":[";
    for (std::size_t j = 0; j < s.samples.size(); ++j) {
      if (j) os << ",";
      os << num(s.samples[j]);
    }
    os << "],\"stats\":";
    write_stats(os, s.stats);
    os << "}";
  }
  os << "]";

  os << ",\"tables\":[";
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    const TableDump& t = tables_[i];
    if (i) os << ",";
    os << "{\"name\":" << str(t.name) << ",\"headers\":[";
    for (std::size_t j = 0; j < t.headers.size(); ++j) {
      if (j) os << ",";
      os << str(t.headers[j]);
    }
    os << "],\"rows\":[";
    for (std::size_t r = 0; r < t.rows.size(); ++r) {
      if (r) os << ",";
      os << "[";
      for (std::size_t c = 0; c < t.rows[r].size(); ++c) {
        if (c) os << ",";
        os << str(t.rows[r][c]);
      }
      os << "]";
    }
    os << "]}";
  }
  os << "]";

  os << ",\"attributions\":[";
  for (std::size_t i = 0; i < attributions_.size(); ++i) {
    if (i) os << ",";
    write_attribution(os, attributions_[i]);
  }
  os << "]}";
  return os.str();
}

void BenchReport::write_json(const std::string& path) const {
  std::ofstream out(path);
  MPAS_CHECK_MSG(out.good(), "cannot open bench report file " << path);
  out << to_json() << "\n";
}

BenchReport BenchReport::from_json(const json::Value& doc) {
  const int version = static_cast<int>(doc.at("schema_version").as_number());
  if (version != kReportSchemaVersion)
    throw std::runtime_error("bench report: unsupported schema_version " +
                             std::to_string(version));
  BenchReport report(doc.at("suite").as_string());

  const json::Value& env = doc.at("environment");
  report.environment_.git_sha = env.at("git_sha").as_string();
  report.environment_.compiler = env.at("compiler").as_string();
  report.environment_.build_type = env.at("build_type").as_string();
  report.environment_.flags = env.at("flags").as_string();
  report.environment_.os = env.at("os").as_string();
  report.environment_.hardware_threads =
      static_cast<int>(env.at("hardware_threads").as_number());
  report.environment_.machine_preset = env.at("machine_preset").as_string();
  report.environment_.mesh_level =
      static_cast<int>(env.at("mesh_level").as_number());

  for (const auto& sv : doc.at("series").as_array()) {
    MetricSeries s;
    s.name = sv.at("name").as_string();
    s.unit = sv.at("unit").as_string();
    s.kind = kind_from(sv.at("kind").as_string());
    s.direction = direction_from(sv.at("direction").as_string());
    for (const auto& sample : sv.at("samples").as_array())
      s.samples.push_back(sample.as_number());
    s.stats = stats_from(sv.at("stats"));
    report.series_.push_back(std::move(s));
  }

  for (const auto& tv : doc.at("tables").as_array()) {
    TableDump t;
    t.name = tv.at("name").as_string();
    for (const auto& h : tv.at("headers").as_array())
      t.headers.push_back(h.as_string());
    for (const auto& row : tv.at("rows").as_array()) {
      std::vector<std::string> cells;
      for (const auto& cell : row.as_array())
        cells.push_back(cell.as_string());
      t.rows.push_back(std::move(cells));
    }
    report.tables_.push_back(std::move(t));
  }

  for (const auto& av : doc.at("attributions").as_array())
    report.attributions_.push_back(attribution_from(av));
  return report;
}

BenchReport BenchReport::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good())
    throw std::runtime_error("cannot read bench report file " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return from_json(json::parse(buffer.str()));
}

}  // namespace mpas::bench_harness
