// Multi-rank shallow-water integrator over partitioned local meshes, wired
// through the SimWorld message fabric. Functionally this is the paper's MPI
// layer: each rank advances its owned cells/edges, exchanging halos of the
// provisional state and of pv_edge at the sync points of Figure 4. Owned
// values are bitwise identical to a serial run on the global mesh (tested),
// because every kernel gathers the same inputs in the same order.
#pragma once

#include <memory>

#include "comm/simworld.hpp"
#include "partition/halo.hpp"
#include "sw/kernels.hpp"
#include "sw/testcases.hpp"

namespace mpas::comm {

class DistributedSw {
 public:
  DistributedSw(const mesh::VoronoiMesh& global_mesh, int num_ranks,
                sw::SwParams params,
                sw::LoopVariant variant = sw::LoopVariant::BranchFree,
                int halo_layers = 2);

  void apply_test_case(const sw::TestCase& tc);
  void initialize();
  void step();
  void run(int steps);

  /// Run `steps` steps with one thread per rank, exchanging halos through
  /// the message fabric with blocking receives (true MPI-style concurrent
  /// execution instead of the lockstep driver). Bitwise identical results
  /// (tested): values only ever flow through the FIFO message queues.
  void run_threaded(int steps);

  [[nodiscard]] int num_ranks() const { return world_.num_ranks(); }
  [[nodiscard]] const partition::LocalMesh& local_mesh(int rank) const {
    return locals_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] const partition::ExchangePlan& plan(int rank) const {
    return plans_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] sw::FieldStore& fields(int rank) {
    return *stores_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] SimWorld::Stats comm_stats() const { return world_.stats(); }

  /// Assemble a global field from the owners (cells or edges), for
  /// validation against a serial run.
  [[nodiscard]] std::vector<Real> gather_global(sw::FieldId field) const;

 private:
  void exchange(sw::FieldId field);
  void exchange_rank(int rank, sw::FieldId field);  // threaded-mode variant
  void step_rank(int rank);                         // one rank's full step
  void compute_diagnostics(int rank, sw::FieldId h_in, sw::FieldId u_in);
  void compute_tend(int rank, sw::FieldId h_in, sw::FieldId u_in);

  const mesh::VoronoiMesh& global_;
  sw::SwParams params_;
  sw::LoopVariant variant_;
  partition::Partition part_;
  std::vector<partition::LocalMesh> locals_;
  std::vector<partition::ExchangePlan> plans_;
  std::vector<std::unique_ptr<sw::FieldStore>> stores_;
  SimWorld world_;
};

}  // namespace mpas::comm
