#include "resilience/health/hybrid.hpp"

#include <algorithm>

#include "analysis/lock_order.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace mpas::resilience::health {

SelfHealingHybrid::SelfHealingHybrid(const mesh::VoronoiMesh& mesh,
                                     sw::SwParams params, Options opts)
    : mesh_(mesh),
      opts_(opts),
      model_(mesh, params),
      offload_(opts.sim.platform.link, exec::TransferPolicy::ResidentMesh,
               // Capacity is not under test here; size it to fit with room.
               2 * (mesh.mesh_data_bytes() + std::size_t{64} * 1024 * 1024)),
      monitor_(opts.health),
      engine_(core::MeshSizes{mesh.num_cells, mesh.num_edges,
                              mesh.num_vertices},
              opts.sim) {
  // Arm the lock-order detector when MPAS_LOCK_CHECK=1 (idempotent).
  analysis::LockOrderRegistry::install_from_env();
  monitor_.set_metric_scope(opts_.metric_scope);
  if (opts_.threads > 0) {
    pool_ = std::make_unique<exec::ThreadPool>(opts_.threads);
    model_.set_pool(pool_.get());
  }
  offload_.set_resilience(opts_.injector, opts_.retry, /*recover=*/true);
}

void SelfHealingHybrid::initialize() {
  monitor_.track("host");
  monitor_.track("accel");

  const std::size_t state_bytes = model_.fields().total_bytes();
  // Rank-boundary slice that must round-trip for MPI each substep; the
  // conventional ~5% boundary share (see ablation_transfer_policy).
  const std::size_t halo_bytes = std::max<std::size_t>(state_bytes / 20, 1);
  buf_mesh_ = offload_.register_buffer("mesh", mesh_.mesh_data_bytes(),
                                       exec::BufferKind::MeshData);
  buf_state_ = offload_.register_buffer("state", state_bytes,
                                        exec::BufferKind::ComputeData);
  buf_halo_ = offload_.register_buffer("halo", halo_bytes,
                                       exec::BufferKind::ComputeData);

  ReplanResult plans[3];
  const DeviceAvailability avail;  // everything nameplate-healthy
  MPAS_CHECK_MSG(replan_all(avail, plans),
                 "initial hybrid plan rejected by the verifier");
  swap_in(plans, avail);
  replans_ = 0;  // the initial plan is not a healing event
  seen_generation_ = monitor_.generation();

  if (avail_.accel_alive) offload_.initial_upload();
  seen_retries_ = offload_.stats().transfer_retries;
  model_.initialize();
}

bool SelfHealingHybrid::replan_all(const DeviceAvailability& avail,
                                   ReplanResult out[3]) const {
  const auto& graphs = model_.graphs();
  const core::DataflowGraph* g[3] = {&graphs.setup, &graphs.early,
                                     &graphs.final};
  bool accepted = true;
  for (int i = 0; i < 3; ++i) {
    out[i] = engine_.replan(*g[i], avail);
    accepted = accepted && out[i].accepted;
  }
  return accepted;
}

void SelfHealingHybrid::swap_in(ReplanResult plans[3],
                                const DeviceAvailability& avail) {
  // A step boundary: nothing may still run the old plan, and a quarantined
  // accelerator's residency is void (host copies are authoritative).
  if (pool_) pool_->wait_idle();
  if (!avail.accel_alive) offload_.invalidate_device();
  model_.set_schedules(plans[0].schedule, plans[1].schedule,
                       plans[2].schedule);
  for (int i = 0; i < 3; ++i) current_[i] = std::move(plans[i]);
  // The per-step work just changed shape, so both devices' timing baselines
  // are stale; without this the monitor would misread the heavier host-only
  // plan as a host gray failure.
  monitor_.reset_baseline("host");
  monitor_.reset_baseline("accel");
  avail_ = avail;
  pending_valid_ = false;
  replans_ += 1;
  MPAS_TRACE_INSTANT_ARGS(
      "health:replan",
      obs::trace_arg("step", step_) + "," +
          obs::trace_arg("plan", current_[1].schedule.name) + "," +
          obs::trace_arg("accel", std::string(avail.accel_alive ? "alive"
                                                                : "dead")));
  obs::MetricsRegistry::global()
      .counter(opts_.metric_scope + "resilience.health.replans")
      .add(1);
}

DeviceAvailability SelfHealingHybrid::current_availability() const {
  DeviceAvailability avail;
  avail.accel_alive = monitor_.usable("accel");
  if (avail.accel_alive && monitor_.state("accel") == HealthState::Suspect)
    avail.accel_slowdown = monitor_.slowdown("accel");
  return avail;
}

bool SelfHealingHybrid::plan_uses_accel() const {
  for (const auto& plan : current_) {
    for (const auto& a : plan.schedule.assignments)
      if (a.side != core::DeviceSide::Host) return true;
  }
  return false;
}

void SelfHealingHybrid::offload_step_traffic() {
  // The per-step residency replay of the resident-mesh policy: state up
  // once, the halo slice down (and refreshed by the exchange) per substep.
  offload_.ensure_on_device(buf_mesh_);
  offload_.ensure_on_device(buf_state_);
  for (int substep = 0; substep < 4; ++substep) {
    offload_.ensure_on_device(buf_halo_);
    offload_.mark_written_on_device(buf_state_);
    offload_.ensure_on_host(buf_halo_);
    offload_.mark_written_on_host(buf_halo_);
  }
  offload_.end_offload_region();
}

void SelfHealingHybrid::step() {
  // 1. Step boundary: a validated pending plan replaces the current one.
  if (pending_valid_) swap_in(pending_, pending_avail_);

  // 2. Probation: ping the quarantined link when the backoff elapses.
  if (monitor_.probe_due("accel", step_)) {
    bool ok = true;
    try {
      offload_.probe_link(opts_.probe_bytes);
    } catch (const Error&) {
      ok = false;
    }
    monitor_.observe_probe("accel", step_, ok);
  }

  // 3. Offload traffic for a plan that touches the accelerator. A retry
  //    escalation here is a hard device failure: quarantine, replan to
  //    host-only, and swap immediately — the numerics have not started,
  //    so the step proceeds bitwise-unchanged on the host.
  bool used_accel = false;
  if (avail_.accel_alive && plan_uses_accel()) {
    try {
      offload_step_traffic();
      used_accel = true;
    } catch (const Error& e) {
      monitor_.observe_failure("accel", step_, e.what());
      seen_generation_ = monitor_.generation();
      ReplanResult plans[3];
      const DeviceAvailability avail = current_availability();
      MPAS_CHECK_MSG(replan_all(avail, plans),
                     "host-only fallback plan rejected by the verifier");
      swap_in(plans, avail);
    }
  }

  // 4. The numerics (schedule-invariant, bitwise).
  model_.step();

  // 5. Feed the monitor this step's modeled device times and link retries.
  Real host_s = 0;
  Real accel_s = 0;
  const Real reps[3] = {1, 3, 1};  // setup x1, early x3, final x1
  for (int i = 0; i < 3; ++i) {
    host_s += reps[i] * current_[i].modeled.host_busy;
    accel_s += reps[i] * current_[i].modeled.accel_busy;
  }
  monitor_.observe_step_time("host", step_, host_s);
  if (used_accel) {
    const Real factor =
        accel_slowdown_hook_ ? std::max<Real>(1.0, accel_slowdown_hook_())
                             : 1.0;
    monitor_.observe_step_time("accel", step_, accel_s * factor);
  } else if (monitor_.state("accel") != HealthState::Quarantined) {
    // Idle (host-only plan) but not dead: it still answers heartbeats.
    monitor_.observe_heartbeat("accel", step_);
  }
  const std::uint64_t retries = offload_.stats().transfer_retries;
  monitor_.observe_transfer_retries("accel", retries - seen_retries_);
  seen_retries_ = retries;

  // 6. Fold signals; 7. a generation change means the availability view
  //    shifted — build and validate the next plan for the next boundary.
  monitor_.end_step(step_);
  if (monitor_.generation() != seen_generation_) {
    seen_generation_ = monitor_.generation();
    const DeviceAvailability avail = current_availability();
    ReplanResult plans[3];
    if (replan_all(avail, plans)) {
      for (int i = 0; i < 3; ++i) pending_[i] = std::move(plans[i]);
      pending_avail_ = avail;
      pending_valid_ = true;
    } else {
      // Keep flying the current validated plan; say so in the trace.
      MPAS_TRACE_INSTANT_ARGS("health:replan_rejected",
                              obs::trace_arg("step", step_));
    }
  }
  step_ += 1;
}

void SelfHealingHybrid::run(int steps) {
  for (int i = 0; i < steps; ++i) step();
}

Real SelfHealingHybrid::modeled_step_seconds() const {
  return current_[0].modeled.makespan + 3 * current_[1].modeled.makespan +
         current_[2].modeled.makespan;
}

}  // namespace mpas::resilience::health
