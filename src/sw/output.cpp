#include "sw/output.hpp"

#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace mpas::sw {

void write_vtk(const std::string& path, const mesh::VoronoiMesh& m,
               const FieldStore& fields,
               const std::vector<FieldId>& cell_fields) {
  for (FieldId f : cell_fields)
    MPAS_CHECK_MSG(field_info(f).location == MeshLocation::Cell,
                   "write_vtk: '" << field_info(f).name
                                  << "' is not a cell field");

  std::ofstream os(path);
  MPAS_CHECK_MSG(os.good(), "cannot open '" << path << "'");
  os << "# vtk DataFile Version 3.0\n"
     << "MPAS shallow-water Voronoi mesh\nASCII\nDATASET POLYDATA\n";

  // Points: the Voronoi polygon corners (triangle circumcenters), scaled
  // to the sphere radius.
  os << "POINTS " << m.num_vertices << " double\n";
  for (Index v = 0; v < m.num_vertices; ++v) {
    const Vec3 p = m.x_vertex[v] * m.sphere_radius;
    os << p.x << " " << p.y << " " << p.z << "\n";
  }

  // Polygons: one per Voronoi cell, corners in CCW order.
  std::int64_t index_count = 0;
  for (Index c = 0; c < m.num_cells; ++c)
    index_count += 1 + m.n_edges_on_cell[c];
  os << "POLYGONS " << m.num_cells << " " << index_count << "\n";
  for (Index c = 0; c < m.num_cells; ++c) {
    os << m.n_edges_on_cell[c];
    for (Index j = 0; j < m.n_edges_on_cell[c]; ++j)
      os << " " << m.vertices_on_cell(c, j);
    os << "\n";
  }

  os << "CELL_DATA " << m.num_cells << "\n";
  for (FieldId f : cell_fields) {
    const auto data = fields.get(f);
    os << "SCALARS " << field_info(f).name << " double 1\nLOOKUP_TABLE default\n";
    for (Index c = 0; c < m.num_cells; ++c) os << data[c] << "\n";
  }
  MPAS_CHECK_MSG(os.good(), "write failure on '" << path << "'");
}

namespace {
constexpr char kMagic[8] = {'M', 'P', 'A', 'S', 'S', 'T', 'A', '1'};
}

void save_state(const std::string& path, const FieldStore& fields) {
  std::ofstream os(path, std::ios::binary);
  MPAS_CHECK_MSG(os.good(), "cannot open '" << path << "'");
  os.write(kMagic, sizeof(kMagic));
  const auto& m = fields.mesh();
  os.write(reinterpret_cast<const char*>(&m.num_cells), sizeof(Index));
  os.write(reinterpret_cast<const char*>(&m.num_edges), sizeof(Index));
  for (FieldId f : {FieldId::H, FieldId::U, FieldId::Bottom}) {
    const auto data = fields.get(f);
    os.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size() * sizeof(Real)));
  }
  MPAS_CHECK_MSG(os.good(), "write failure on '" << path << "'");
}

void load_state(const std::string& path, FieldStore& fields) {
  std::ifstream is(path, std::ios::binary);
  MPAS_CHECK_MSG(is.good(), "cannot open checkpoint '" << path << "'");
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  MPAS_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                 "'" << path << "' is not a state checkpoint");
  Index cells = 0, edges = 0;
  is.read(reinterpret_cast<char*>(&cells), sizeof(Index));
  is.read(reinterpret_cast<char*>(&edges), sizeof(Index));
  const auto& m = fields.mesh();
  MPAS_CHECK_MSG(cells == m.num_cells && edges == m.num_edges,
                 "checkpoint for a different mesh (" << cells << " cells vs "
                                                     << m.num_cells << ")");
  for (FieldId f : {FieldId::H, FieldId::U, FieldId::Bottom}) {
    auto data = fields.get(f);
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(Real)));
    MPAS_CHECK_MSG(is.good(), "truncated checkpoint '" << path << "'");
  }
}

}  // namespace mpas::sw
