file(REMOVE_RECURSE
  "CMakeFiles/fig6_optimization_ladder.dir/fig6_optimization_ladder.cpp.o"
  "CMakeFiles/fig6_optimization_ladder.dir/fig6_optimization_ladder.cpp.o.d"
  "fig6_optimization_ladder"
  "fig6_optimization_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_optimization_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
