#include "comm/simworld.hpp"

#include <chrono>
#include <tuple>

#include "util/error.hpp"

namespace mpas::comm {

SimWorld::SimWorld(int num_ranks) : num_ranks_(num_ranks) {
  MPAS_CHECK(num_ranks >= 1);
}

void SimWorld::send(int from, int to, int tag, std::vector<Real> payload) {
  MPAS_CHECK(from >= 0 && from < num_ranks_);
  MPAS_CHECK(to >= 0 && to < num_ranks_);
  MPAS_CHECK_MSG(from != to, "self-send (rank " << from << ")");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.messages += 1;
    stats_.bytes += payload.size() * sizeof(Real);
    queues_[Key{from, to, tag}].push_back(std::move(payload));
  }
  cv_.notify_all();
}

std::vector<Real> SimWorld::recv(int to, int from, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find(Key{from, to, tag});
  MPAS_CHECK_MSG(it != queues_.end() && !it->second.empty(),
                 "recv with no matching message: " << from << " -> " << to
                                                   << " tag " << tag);
  std::vector<Real> payload = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  return payload;
}

std::vector<Real> SimWorld::recv_blocking(int to, int from, int tag,
                                          int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key key{from, to, tag};
  const bool arrived = cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [&] {
        auto it = queues_.find(key);
        return it != queues_.end() && !it->second.empty();
      });
  MPAS_CHECK_MSG(arrived, "recv_blocking timed out: " << from << " -> " << to
                                                      << " tag " << tag);
  auto it = queues_.find(key);
  std::vector<Real> payload = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  return payload;
}

bool SimWorld::has_pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !queues_.empty();
}

SimWorld::Stats SimWorld::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SimWorld::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = {};
}

}  // namespace mpas::comm
