// The on-disk generation ring with crash-consistent publish.
//
// A DurableStore owns one directory of checkpoint generations:
//
//   ckpt_00000001.mpasckpt, ckpt_00000002.mpasckpt, ...
//
// publish() makes a new generation visible atomically via the classic
// protocol — write to a hidden .tmp, fsync it, close, rename over the
// final name, fsync the parent directory — so a crash at ANY point leaves
// either the previous generations intact (tmp is garbage, swept at next
// open) or the new one complete. The ring keeps the newest `keep`
// generations; load_latest() walks them newest-first and falls back across
// damaged ones (decode_checkpoint fails closed), so one rotted or torn file
// costs one checkpoint interval, never the run.
//
// Every durability syscall is a fault-injection site (FaultInjector::
// on_storage with the StorageOp protocol points), which is how the tests
// sweep a simulated crash between every pair of syscalls and prove the
// invariant above.
//
// Threading: a store is externally serialized — exactly one thread (the
// DurableWriter, or a test) uses it at a time. That keeps file I/O out
// from under any lock by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "resilience/durable/format.hpp"
#include "resilience/fault.hpp"

namespace mpas::resilience::durable {

struct DurableOptions {
  std::string dir;          // created if missing
  int keep = 3;             // generations retained (>= 1)
  FaultInjector* injector = nullptr;  // optional storage-fault surface
};

struct PublishResult {
  bool published = false;   // final name exists (may still be damaged by a
                            // short write / bit rot — the reader decides)
  bool crashed = false;     // a simulated StorageCrash/TornWrite stopped
                            // the protocol mid-way
  std::uint64_t generation = 0;
  std::size_t bytes = 0;
  double seconds = 0;       // wall time of the publish
};

struct LoadResult {
  CheckpointImage image;
  std::uint64_t generation = 0;
  int fallbacks = 0;        // newer generations skipped as damaged
};

class DurableStore {
 public:
  explicit DurableStore(DurableOptions opts);

  /// Publish `image` as the next generation (see protocol above). Never
  /// throws on storage faults — a real I/O failure surfaces as
  /// published=false so the writer can count it and carry on.
  PublishResult publish(const CheckpointImage& image);

  /// Newest intact generation, falling back across damaged ones. nullopt
  /// when no generation decodes (empty or fully corrupted directory).
  std::optional<LoadResult> load_latest();

  /// Generations currently on disk, ascending.
  [[nodiscard]] std::vector<std::uint64_t> generations() const;

  [[nodiscard]] const std::string& dir() const { return opts_.dir; }
  [[nodiscard]] int keep() const { return opts_.keep; }

 private:
  /// One protocol point: returns the faults firing here. Sets `crash` when
  /// a StorageCrash (or the crash half of a torn write) stops the protocol.
  std::vector<FaultSpec> storage_faults(StorageOp op);

  void sweep_orphan_tmps();
  void prune();

  DurableOptions opts_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace mpas::resilience::durable
