// Tests for the execution substrate: thread pool / parallel_for semantics
// and the offload residency runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "exec/offload.hpp"
#include "exec/thread_pool.hpp"
#include "util/error.hpp"

namespace mpas::exec {
namespace {

TEST(ThreadPool, InlineModeRunsOnCaller) {
  ThreadPool pool(0);
  std::vector<int> data(1000, 0);
  pool.parallel_for(1000, [&](Index b, Index e) {
    for (Index i = b; i < e; ++i) data[i] = 1;
  });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), 1000);
}

TEST(ThreadPool, CoversRangeExactlyOnceStatic) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(10000, [&](Index b, Index e) {
    for (Index i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, CoversRangeExactlyOnceDynamic) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(9999);
  pool.parallel_for(
      9999,
      [&](Index b, Index e) {
        for (Index i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      LoopSchedule::Dynamic, 128);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int round = 0; round < 200; ++round)
    pool.parallel_for(100, [&](Index b, Index e) {
      for (Index i = b; i < e; ++i) sum.fetch_add(i);
    });
  EXPECT_EQ(sum.load(), 200L * (99 * 100 / 2));
  EXPECT_EQ(pool.regions_opened(), 200u);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](Index b, Index) {
                                   if (b == 0) throw Error("boom");
                                 }),
               Error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](Index b, Index e) { count += e - b; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](Index, Index) { touched = true; });
  EXPECT_FALSE(touched);
}

class OffloadTest : public ::testing::Test {
 protected:
  OffloadTest()
      : rt(machine::TransferLink{}, TransferPolicy::ResidentMesh,
           std::size_t{8} * 1024 * 1024 * 1024) {
    mesh_buf = rt.register_buffer("mesh", 1000000, BufferKind::MeshData);
    state_buf = rt.register_buffer("h", 8000, BufferKind::ComputeData);
  }
  OffloadRuntime rt;
  BufferId mesh_buf = -1;
  BufferId state_buf = -1;
};

TEST_F(OffloadTest, InitialUploadPushesEverythingOnce) {
  const Real t = rt.initial_upload();
  EXPECT_GT(t, 0);
  EXPECT_EQ(rt.stats().bytes_to_device, 1008000u);
  // Mesh stays resident: re-ensuring costs nothing.
  EXPECT_EQ(rt.ensure_on_device(mesh_buf), 0.0);
  EXPECT_EQ(rt.ensure_on_device(state_buf), 0.0);
}

TEST_F(OffloadTest, HostWriteInvalidatesDeviceCopyOnly) {
  rt.initial_upload();
  rt.mark_written_on_host(state_buf);
  EXPECT_GT(rt.ensure_on_device(state_buf), 0.0);  // must re-upload
  EXPECT_EQ(rt.ensure_on_device(mesh_buf), 0.0);   // mesh untouched
}

TEST_F(OffloadTest, DeviceWriteRequiresDownloadBeforeHostRead) {
  rt.initial_upload();
  rt.mark_written_on_device(state_buf);
  EXPECT_GT(rt.ensure_on_host(state_buf), 0.0);
  EXPECT_EQ(rt.ensure_on_host(state_buf), 0.0);  // now valid both sides
}

TEST_F(OffloadTest, MeshBuffersMustNotBeWritten) {
  EXPECT_THROW(rt.mark_written_on_device(mesh_buf), Error);
  EXPECT_THROW(rt.mark_written_on_host(mesh_buf), Error);
}

TEST_F(OffloadTest, DeviceMemoryCapacityIsEnforced) {
  OffloadRuntime small(machine::TransferLink{}, TransferPolicy::ResidentMesh,
                       1024);
  small.register_buffer("fits", 1000, BufferKind::ComputeData);
  EXPECT_THROW(small.register_buffer("too-big", 100, BufferKind::ComputeData),
               Error);
}

TEST(OffloadPolicy, OnDemandMovesMoreBytesThanResident) {
  // The Section IV.A claim: keeping mesh data resident cuts transfer volume.
  // Simulate 10 "steps" where the device kernel reads mesh + state and
  // writes state.
  const std::size_t cap = std::size_t{8} * 1024 * 1024 * 1024;
  for (auto policy : {TransferPolicy::OnDemand, TransferPolicy::ResidentMesh}) {
    OffloadRuntime rt(machine::TransferLink{}, policy, cap);
    const BufferId mesh = rt.register_buffer("mesh", 4000000,
                                             BufferKind::MeshData);
    const BufferId state = rt.register_buffer("state", 1000000,
                                              BufferKind::ComputeData);
    rt.initial_upload();
    for (int step = 0; step < 10; ++step) {
      rt.ensure_on_device(mesh);
      rt.ensure_on_device(state);
      rt.mark_written_on_device(state);
      rt.ensure_on_host(state);
      rt.mark_written_on_host(state);  // host-side half step
      rt.end_offload_region();
    }
    if (policy == TransferPolicy::OnDemand) {
      // `#pragma offload` in/out semantics: mesh + state shipped every
      // region -> 10 x 5 MB up.
      EXPECT_EQ(rt.stats().bytes_to_device, 50000000u);
    } else {
      // One 5 MB initial upload + 9 state refreshes (the first step's
      // state is still valid from the initial upload).
      EXPECT_EQ(rt.stats().bytes_to_device, 14000000u);
      // The paper's Section IV.A claim: transfers reduced by ~4x.
      EXPECT_GT(50000000.0 / 14000000.0, 3.5);
    }
  }
}

}  // namespace
}  // namespace mpas::exec
