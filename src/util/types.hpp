// Fundamental scalar and index types shared by every module.
//
// MPAS meshes are indexed with 0-based 32-bit signed indices in this
// reproduction (the largest mesh, 15-km / 2,621,442 cells, has ~7.9M edges,
// comfortably inside int32). `Index` is a distinct alias so call sites read
// as mesh indices rather than raw ints.
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>

namespace mpas {

using Real = double;     // the paper runs everything in double precision
using Index = std::int32_t;
using GlobalIndex = std::int64_t;

inline constexpr Index kInvalidIndex = -1;

/// Physical constants used by the shallow-water test suite
/// (Williamson et al. 1992 standard values).
namespace constants {
inline constexpr Real kGravity = 9.80616;        // m s^-2
inline constexpr Real kEarthRadius = 6.37122e6;  // m
inline constexpr Real kOmega = 7.292e-5;         // rad s^-1 (Earth rotation)
inline constexpr Real kPi = 3.14159265358979323846;
}  // namespace constants

/// Where on the C-staggered Voronoi mesh a discrete field lives.
/// Figure 1 of the paper: mass points (cell centers), velocity points
/// (edge midpoints), vorticity points (triangle circumcenters).
enum class MeshLocation : std::uint8_t {
  Cell = 0,    // mass points
  Edge = 1,    // velocity points
  Vertex = 2,  // vorticity points
  None = 3,    // scalars / bookkeeping values not tied to the mesh
};

inline const char* to_string(MeshLocation loc) {
  switch (loc) {
    case MeshLocation::Cell: return "cell";
    case MeshLocation::Edge: return "edge";
    case MeshLocation::Vertex: return "vertex";
    case MeshLocation::None: return "none";
  }
  return "?";
}

}  // namespace mpas
