// Tests for visualization/restart output: VTK structure, checkpoint
// round-trip, and bit-exact restart continuation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "mesh/mesh_cache.hpp"
#include "sw/output.hpp"
#include "sw/reference.hpp"
#include "sw/testcases.hpp"

namespace mpas::sw {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Vtk, WritesWellFormedPolyData) {
  const auto mesh = mesh::get_global_mesh(2);
  FieldStore fields(*mesh);
  const auto tc = make_test_case(5);
  apply_initial_conditions(*tc, *mesh, fields);

  const std::string path = temp_path("mpas_test.vtk");
  write_vtk(path, *mesh, fields, {FieldId::H, FieldId::Bottom});

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::remove(path.c_str());

  EXPECT_NE(text.find("# vtk DataFile"), std::string::npos);
  EXPECT_NE(text.find("DATASET POLYDATA"), std::string::npos);
  std::ostringstream points;
  points << "POINTS " << mesh->num_vertices << " double";
  EXPECT_NE(text.find(points.str()), std::string::npos);
  std::ostringstream polys;
  polys << "POLYGONS " << mesh->num_cells;
  EXPECT_NE(text.find(polys.str()), std::string::npos);
  EXPECT_NE(text.find("SCALARS h double 1"), std::string::npos);
  EXPECT_NE(text.find("SCALARS b double 1"), std::string::npos);
}

TEST(Vtk, RejectsNonCellFields) {
  const auto mesh = mesh::get_global_mesh(2);
  FieldStore fields(*mesh);
  EXPECT_THROW(
      write_vtk(temp_path("bad.vtk"), *mesh, fields, {FieldId::U}), Error);
}

TEST(Checkpoint, RoundTripIsExact) {
  const auto mesh = mesh::get_global_mesh(2);
  FieldStore a(*mesh);
  const auto tc = make_test_case(6);
  apply_initial_conditions(*tc, *mesh, a);

  const std::string path = temp_path("mpas_state.ckpt");
  save_state(path, a);
  FieldStore b(*mesh);
  load_state(path, b);
  std::remove(path.c_str());

  for (FieldId f : {FieldId::H, FieldId::U, FieldId::Bottom}) {
    const auto sa = a.get(f);
    const auto sb = b.get(f);
    for (std::size_t i = 0; i < sa.size(); ++i) ASSERT_EQ(sa[i], sb[i]);
  }
}

TEST(Checkpoint, RestartContinuesBitForBit) {
  // 20 straight steps == 10 steps + checkpoint/restore + 10 steps.
  const auto mesh = mesh::get_global_mesh(3);
  const auto tc = make_test_case(5);
  SwParams params;
  params.dt = suggested_time_step(*tc, *mesh, 0.4);

  ReferenceIntegrator straight(*mesh, params, LoopVariant::BranchFree);
  apply_initial_conditions(*tc, *mesh, straight.fields());
  straight.initialize();
  straight.run(20);

  ReferenceIntegrator first(*mesh, params, LoopVariant::BranchFree);
  apply_initial_conditions(*tc, *mesh, first.fields());
  first.initialize();
  first.run(10);
  const std::string path = temp_path("mpas_restart.ckpt");
  save_state(path, first.fields());

  ReferenceIntegrator second(*mesh, params, LoopVariant::BranchFree);
  load_state(path, second.fields());
  std::remove(path.c_str());
  second.initialize();  // diagnostics recomputed from H/U: deterministic
  second.run(10);

  const auto h1 = straight.fields().get(FieldId::H);
  const auto h2 = second.fields().get(FieldId::H);
  const auto u1 = straight.fields().get(FieldId::U);
  const auto u2 = second.fields().get(FieldId::U);
  for (Index c = 0; c < mesh->num_cells; ++c) ASSERT_EQ(h1[c], h2[c]);
  for (Index e = 0; e < mesh->num_edges; ++e) ASSERT_EQ(u1[e], u2[e]);
}

TEST(Checkpoint, RejectsWrongMeshAndCorruptFiles) {
  const auto small = mesh::get_global_mesh(2);
  const auto big = mesh::get_global_mesh(3);
  FieldStore a(*small);
  const std::string path = temp_path("mpas_wrong.ckpt");
  save_state(path, a);
  FieldStore b(*big);
  EXPECT_THROW(load_state(path, b), Error);
  std::remove(path.c_str());

  const std::string junk = temp_path("mpas_junk.ckpt");
  std::ofstream(junk) << "not a checkpoint at all";
  FieldStore c(*small);
  EXPECT_THROW(load_state(junk, c), Error);
  std::remove(junk.c_str());
}

}  // namespace
}  // namespace mpas::sw
