#include "resilience/channel.hpp"

#include <chrono>
#include <thread>

#include "obs/trace.hpp"
#include "resilience/envelope.hpp"
#include "util/error.hpp"

namespace mpas::resilience {

namespace {
using Clock = std::chrono::steady_clock;

Clock::duration from_ms(Real ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<Real, std::milli>(ms));
}
}  // namespace

ResilientChannel::ResilientChannel(Transport& transport, RetryPolicy policy,
                                   bool recover, machine::Network network)
    : transport_(transport),
      policy_(policy),
      recover_(recover),
      network_(network) {
  MPAS_CHECK_MSG(policy.max_attempts >= 1, "max_attempts must be >= 1");
}

void ResilientChannel::send(int from, int to, int tag,
                            std::vector<Real> payload) {
  util::LockGuard lock(mutex_);
  Stream& stream = streams_[Key{from, to, tag}];
  const std::uint64_t seq = stream.next_send_seq++;
  stream.retained = payload;  // keep a copy for retransmission
  stream.retained_seq = seq;
  stats_.sent += 1;
  // Posting happens under the channel lock so a receiver never observes
  // "retained but not yet posted" as a false drop.
  transport_.send(from, to, tag, seal(seq, std::move(payload)));
}

void ResilientChannel::retransmit_locked(const Key& key, Stream& stream) {
  // The bulk-synchronous exchange structure guarantees at most one
  // outstanding message per stream, so the newest retained copy is the one
  // the receiver is missing; anything else is a protocol bug.
  MPAS_CHECK_MSG(stream.retained_seq == stream.next_recv_seq,
                 "retransmit copy superseded on " << key.from << " -> "
                                                  << key.to << " tag "
                                                  << key.tag);
  stats_.retransmits += 1;
  stream.resend_inflight = true;
  MPAS_TRACE_INSTANT_ARGS(
      "resilience:retransmit",
      obs::trace_arg("from", static_cast<std::int64_t>(key.from)) + "," +
          obs::trace_arg("to", static_cast<std::int64_t>(key.to)) + "," +
          obs::trace_arg("tag", static_cast<std::int64_t>(key.tag)) + "," +
          obs::trace_arg("seq",
                         static_cast<std::uint64_t>(stream.retained_seq)));
  transport_.send(key.from, key.to, key.tag,
                  seal(stream.retained_seq, stream.retained));
}

void ResilientChannel::handle_fault_locked(const Key& key, Stream& stream,
                                           const char* what, int& attempts) {
  stats_.modeled_seconds_lost += network_.message_time(
      static_cast<std::int64_t>((stream.retained.size() + kEnvelopeWords) *
                                sizeof(Real)));
  MPAS_CHECK_MSG(recover_, "halo message "
                               << what << ": " << key.from << " -> " << key.to
                               << " tag " << key.tag << " seq "
                               << stream.next_recv_seq
                               << " (recovery disabled)");
  attempts += 1;
  MPAS_CHECK_MSG(attempts <= policy_.max_attempts,
                 "halo message " << what << " persists after "
                                 << policy_.max_attempts << " attempts: "
                                 << key.from << " -> " << key.to << " tag "
                                 << key.tag);
  retransmit_locked(key, stream);
}

std::vector<Real> ResilientChannel::recv(int to, int from, int tag,
                                         std::size_t expected_count) {
  const Key key{from, to, tag};
  const auto deadline = Clock::now() + from_ms(policy_.total_timeout_ms);
  auto patience = Clock::now() + from_ms(policy_.resend_wait_ms);
  int attempts = 1;

  for (;;) {
    util::UniqueLock lock(mutex_);
    Stream& stream = streams_[key];
    if (auto raw = transport_.try_recv(to, from, tag)) {
      auto opened = open(std::move(*raw));
      if (!opened) {
        stats_.detected_corruptions += 1;
        MPAS_TRACE_INSTANT("resilience:corruption_detected");
        // With a resend already in flight for this seq, the wreck is a
        // delayed original that the transport flushed ahead of our live
        // retransmit. Consuming it is enough; posting another retransmit
        // here would count two resends for one recovery. If the in-flight
        // copy was itself lost, the patience path below reposts it.
        if (!stream.resend_inflight) {
          handle_fault_locked(key, stream, "corrupted", attempts);
          patience = Clock::now() + from_ms(policy_.resend_wait_ms);
        }
        continue;
      }
      if (opened->seq < stream.next_recv_seq) {
        // A delayed original or superseded retransmit arriving late.
        stats_.stale_discarded += 1;
        continue;
      }
      MPAS_CHECK_MSG(opened->seq == stream.next_recv_seq,
                     "sequence gap on " << from << " -> " << to << " tag "
                                        << tag << ": got seq " << opened->seq
                                        << ", expected "
                                        << stream.next_recv_seq);
      MPAS_CHECK_MSG(opened->payload.size() == expected_count,
                     "halo payload size mismatch on "
                         << from << " -> " << to << " tag " << tag << ": got "
                         << opened->payload.size() << ", expected "
                         << expected_count);
      stream.next_recv_seq += 1;
      stream.resend_inflight = false;
      stats_.delivered += 1;
      return std::move(opened->payload);
    }

    // Nothing queued: either the message was dropped, or (threaded mode)
    // the sender simply has not posted it yet. The stream's send counter is
    // the proof: the sender only advances it when it posts.
    const bool sender_posted = stream.next_send_seq > stream.next_recv_seq;
    if (sender_posted && Clock::now() >= patience) {
      stats_.detected_drops += 1;
      MPAS_TRACE_INSTANT("resilience:drop_detected");
      handle_fault_locked(key, stream, "dropped", attempts);
      patience = Clock::now() + from_ms(policy_.resend_wait_ms);
      continue;
    }
    lock.unlock();
    MPAS_CHECK_MSG(Clock::now() < deadline,
                   "resilient recv timed out after "
                       << policy_.total_timeout_ms << " ms: " << from << " -> "
                       << to << " tag " << tag);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void ResilientChannel::drain_stale(int to, int from, int tag) {
  util::LockGuard lock(mutex_);
  Stream& stream = streams_[Key{from, to, tag}];
  while (auto raw = transport_.try_recv(to, from, tag)) {
    auto opened = open(std::move(*raw));
    MPAS_CHECK_MSG(!opened || opened->seq < stream.next_recv_seq,
                   "live halo message left behind: " << from << " -> " << to
                                                     << " tag " << tag);
    stats_.stale_discarded += 1;
  }
}

ChannelStats ResilientChannel::stats() const {
  util::LockGuard lock(mutex_);
  return stats_;
}

}  // namespace mpas::resilience
