// Session-service soak driver: ramps one SessionManager through the load
// regimes the service contract promises to survive, and fails loudly when
// any promise breaks. This is the binary behind the CI `session-soak` job.
//
//   underload    everything admitted, everything completes bitwise-correct;
//   saturation   tenants weighted 2:1 flood a full service — admitted-work
//                shares must land within 10% of the weights;
//   overload     low-priority work is shed with explicit reasons, a
//                flexible request is admitted degraded, and every session
//                that did run is still bitwise-correct;
//   fault        a device quarantine mid-run degrades exactly the victim
//                session — co-residents keep their plans, their per-step
//                modeled times stay inside the pre-fault EWMA band, and
//                everyone still lands on the reference bits.
//
// Run:  ./session_soak [phase=all|underload|saturation|overload|fault]
//                      [seed=1] [workers=3] [level=2] [trace=...]
//
// Deterministic by construction: every admission price, deadline, and
// step time is modeled, and request parameters derive from seed= via
// splitmix64 — the same seed replays the same soak bit for bit.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "service/session.hpp"
#include "service/session_manager.hpp"
#include "util/config.hpp"
#include "util/error.hpp"

using namespace mpas;
using service::CostModel;
using service::ServiceOptions;
using service::SessionManager;
using service::SessionRequest;
using service::SessionResult;
using service::SessionState;

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) g_failures += 1;
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

struct SoakConfig {
  std::uint64_t seed = 1;
  int workers = 3;
  int level = 2;
};

SessionRequest base_request(const SoakConfig& soak, std::uint64_t& stream,
                            const std::string& tenant) {
  // Vary the experiment deterministically from the seed stream; every
  // (level, case, steps) combination has a memoized reference hash.
  static constexpr int kCases[] = {2, 5, 6};
  SessionRequest req;
  req.tenant = tenant;
  req.mesh_level = soak.level;
  req.test_case = kCases[splitmix64(stream) % 3];
  req.steps = 4 + static_cast<int>(splitmix64(stream) % 3);
  req.output_every = 2;
  return req;
}

bool bitwise_ok(const SessionResult& r) {
  return r.state_hash == service::reference_hash(
                             r.mesh_level_used, r.test_case_used, r.steps_done);
}

// ------------------------------------------------------------- the phases

void phase_underload(const SoakConfig& soak) {
  std::printf("phase underload (seed=%llu)\n",
              static_cast<unsigned long long>(soak.seed));
  std::uint64_t stream = soak.seed;
  ServiceOptions opts;
  opts.workers = soak.workers;
  const CostModel costs;
  opts.admission.capacity_modeled_s =
      100 * costs.step_seconds(soak.level) * 8;
  SessionManager svc(opts);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i)
    ids.push_back(svc.submit(
        base_request(soak, stream, i % 2 == 0 ? "alpha" : "beta")));
  check(svc.drain(), "drain completed");

  for (const auto id : ids) {
    const SessionResult r = svc.result(id);
    check(r.state == SessionState::Completed,
          "session " + std::to_string(id) + " completed (" + r.reason + ")");
    check(bitwise_ok(r),
          "session " + std::to_string(id) + " bitwise-correct");
  }
  const auto stats = svc.stats();
  check(stats.rejected == 0 && stats.shed == 0,
        "nothing rejected or shed under light load");
}

void phase_saturation(const SoakConfig& soak) {
  std::printf("phase saturation (seed=%llu)\n",
              static_cast<unsigned long long>(soak.seed));
  std::uint64_t stream = soak.seed;
  ServiceOptions opts;
  opts.workers = soak.workers;
  const CostModel costs;
  SessionRequest unit_req;
  unit_req.mesh_level = soak.level;
  unit_req.steps = 5;
  unit_req.output_every = 2;
  const Real unit = costs.price(unit_req);
  opts.admission.capacity_modeled_s = 6.4 * unit;
  opts.admission.max_queued_per_tenant = 64;
  SessionManager svc(opts);
  svc.set_tenant_weight("gold", 2.0);
  svc.set_tenant_weight("bronze", 1.0);

  // Stage the flood while dispatch is paused so admission alone divides
  // the capacity, then release it.
  svc.set_paused(true);
  for (int i = 0; i < 12; ++i) {
    for (const char* tenant : {"gold", "bronze"}) {
      SessionRequest req = base_request(soak, stream, tenant);
      req.steps = 5;  // equal-cost units keep the share arithmetic exact
      req.allow_degraded = false;
      svc.submit(req);
    }
  }
  const auto at_saturation = svc.stats();
  svc.set_paused(false);
  check(svc.drain(), "drain completed");

  const Real gold = at_saturation.admitted_seconds_by_tenant.at("gold");
  const Real bronze = at_saturation.admitted_seconds_by_tenant.at("bronze");
  const Real share = gold / (gold + bronze);
  const Real target = 2.0 / 3.0;
  std::printf("  gold share %.3f (target %.3f +- 10%%)\n",
              static_cast<double>(share), static_cast<double>(target));
  check(share > 0.9 * target && share < 1.1 * target,
        "admitted-work share within 10% of tenant weights");
  check(at_saturation.rejected > 0, "the flood genuinely saturated");
  for (const SessionResult& r : svc.results())
    if (r.state == SessionState::Completed)
      check(bitwise_ok(r), "completed session " + std::to_string(r.id) +
                               " bitwise-correct");
}

void phase_overload(const SoakConfig& soak) {
  std::printf("phase overload (seed=%llu)\n",
              static_cast<unsigned long long>(soak.seed));
  std::uint64_t stream = soak.seed;
  ServiceOptions opts;
  opts.workers = soak.workers;
  const CostModel costs;
  SessionRequest unit_req;
  unit_req.mesh_level = soak.level;
  unit_req.steps = 5;
  unit_req.output_every = 2;
  const Real unit = costs.price(unit_req);
  // Room for three unit sessions plus change: the urgent submissions must
  // shed, and the change is what the degraded rung squeezes into.
  opts.admission.capacity_modeled_s = 3.9 * unit;
  SessionManager svc(opts);
  svc.set_paused(true);

  // Fill the service with background-priority work...
  std::vector<std::uint64_t> low_ids;
  for (int i = 0; i < 3; ++i) {
    SessionRequest req = base_request(soak, stream, "background");
    req.steps = 5;
    req.priority = 1;
    req.allow_degraded = false;
    low_ids.push_back(svc.submit(req));
  }
  // ...then slam it with urgent work that must shed the lowest priority.
  std::vector<std::uint64_t> urgent_ids;
  for (int i = 0; i < 2; ++i) {
    SessionRequest req = base_request(soak, stream, "urgent");
    req.steps = 5;
    req.priority = 9;
    req.allow_degraded = false;
    urgent_ids.push_back(svc.submit(req));
  }
  // And a flexible request that should be admitted at reduced fidelity.
  SessionRequest flexible = base_request(soak, stream, "flexible");
  flexible.mesh_level = soak.level + 2;
  flexible.steps = 3;  // short enough to fit the leftover once degraded
  flexible.priority = 1;
  const auto flex_id = svc.submit(flexible);

  const auto staged = svc.stats();
  check(staged.shed >= 1, "overload shed lower-priority sessions");
  int shed_seen = 0;
  for (const std::uint64_t id : low_ids) {
    const SessionResult r = svc.result(id);
    if (r.state != SessionState::Shed) continue;
    shed_seen += 1;
    check(!r.reason.empty() && r.reason.find("shed") != std::string::npos,
          "shed session " + std::to_string(id) + " carries a reason: " +
              r.reason);
  }
  check(shed_seen >= 1, "a background session was the shedding victim");
  for (const std::uint64_t id : urgent_ids)
    check(svc.result(id).state == SessionState::Queued,
          "urgent session " + std::to_string(id) + " admitted");
  const SessionResult flex = svc.result(flex_id);
  check(flex.degraded &&
            flex.mesh_level_used < flexible.mesh_level &&
            flex.reason.find("degraded under overload") != std::string::npos,
        "flexible session admitted degraded: " + flex.reason);

  svc.set_paused(false);
  check(svc.drain(), "drain completed");
  for (const SessionResult& r : svc.results()) {
    if (r.state != SessionState::Completed) continue;
    check(bitwise_ok(r), "completed session " + std::to_string(r.id) +
                             " bitwise-correct");
  }
}

void phase_fault(const SoakConfig& soak) {
  std::printf("phase fault-under-load (seed=%llu)\n",
              static_cast<unsigned long long>(soak.seed));
  std::uint64_t stream = soak.seed;
  ServiceOptions opts;
  opts.workers = 3;  // all three sessions genuinely co-resident
  const CostModel costs;
  opts.admission.capacity_modeled_s =
      100 * costs.step_seconds(soak.level) * 12;
  SessionManager svc(opts);

  const int steps = 10;
  SessionRequest victim = base_request(soak, stream, "victim");
  victim.steps = steps;
  victim.chaos.quarantine_accel_at_step =
      3 + static_cast<std::int64_t>(splitmix64(stream) % 3);
  SessionRequest co1 = base_request(soak, stream, "co1");
  co1.steps = steps;
  SessionRequest co2 = base_request(soak, stream, "co2");
  co2.steps = steps;

  const auto vid = svc.submit(victim);
  const auto c1 = svc.submit(co1);
  const auto c2 = svc.submit(co2);
  check(svc.drain(), "drain completed");

  const SessionResult v = svc.result(vid);
  check(v.state == SessionState::Completed,
        "victim completed (" + v.reason + ")");
  check(v.replans >= 1, "victim quarantined its device and replanned");
  check(bitwise_ok(v), "victim still bitwise-correct after healing");

  for (const auto id : {c1, c2}) {
    const SessionResult r = svc.result(id);
    check(r.state == SessionState::Completed,
          "co-resident " + std::to_string(id) + " completed");
    check(r.replans == 0,
          "co-resident " + std::to_string(id) + " kept its plan");
    check(bitwise_ok(r),
          "co-resident " + std::to_string(id) + " bitwise-correct");
    // Per-step modeled times must stay inside the band around the EWMA
    // learned before the victim's fault fired — the neighbor's quarantine
    // may not perturb this session's schedule.
    Real ewma = 0;
    bool ok = true;
    for (std::size_t s = 0; s < r.step_modeled_seconds.size(); ++s) {
      const Real t = r.step_modeled_seconds[s];
      if (s < 3) {
        ewma = s == 0 ? t : 0.8 * ewma + 0.2 * t;
        continue;
      }
      ok = ok && t > 0.8 * ewma && t < 1.2 * ewma;
    }
    check(ok, "co-resident " + std::to_string(id) +
                  " step times within the pre-fault EWMA band");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  SoakConfig soak;
  soak.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  soak.workers = static_cast<int>(cfg.get_int("workers", 3));
  soak.level = static_cast<int>(cfg.get_int("level", 2));
  const std::string phase = cfg.get_string("phase", "all");

  const std::string trace_path =
      obs::env_trace_path().value_or(cfg.get_string("trace", ""));
  if (!trace_path.empty()) obs::start_trace_file(trace_path);

  if (phase == "all" || phase == "underload") phase_underload(soak);
  if (phase == "all" || phase == "saturation") phase_saturation(soak);
  if (phase == "all" || phase == "overload") phase_overload(soak);
  if (phase == "all" || phase == "fault") phase_fault(soak);

  std::printf("\nsession soak: %s (seed=%llu)\n",
              g_failures == 0 ? "PASS" : "FAIL",
              static_cast<unsigned long long>(soak.seed));
  if (!trace_path.empty())
    std::printf("trace written to %s\n", trace_path.c_str());
  return g_failures == 0 ? 0 : 1;
}
