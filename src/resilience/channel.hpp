// ResilientChannel: sequenced, checksummed, retrying point-to-point streams
// over any message transport.
//
// The channel seals every payload in an envelope (seq + checksum), keeps a
// retransmit copy of the newest message per (from, to, tag) stream, and on
// the receive side detects drops (no message where one was retained),
// corruption (envelope fails to open) and reordering (stale seq), then
// recovers by re-posting the retained copy — bounded by RetryPolicy, after
// which it escalates with mpas::Error. With `recover` off, the first
// detection escalates immediately: detection is never optional, silent
// divergence is the one forbidden outcome.
//
// The transport is an interface so the channel does not depend on the comm
// library (comm::SimWorld adapts to it); retransmit re-enters the transport
// and therefore re-runs any fault injection hooked into it, which is what
// lets a `repeat`-spec kill the retry too and prove the escalation path.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "machine/machine_model.hpp"
#include "util/annotations.hpp"
#include "util/lock_ranks.hpp"
#include "util/mutex.hpp"
#include "resilience/fault.hpp"
#include "util/types.hpp"

namespace mpas::resilience {

/// Minimal message fabric the channel runs over. `try_recv` must be
/// non-blocking (nullopt = nothing queued); thread safety is the
/// implementation's responsibility.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send(int from, int to, int tag, std::vector<Real> payload) = 0;
  virtual std::optional<std::vector<Real>> try_recv(int to, int from,
                                                    int tag) = 0;
};

struct ChannelStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t detected_drops = 0;
  std::uint64_t detected_corruptions = 0;
  std::uint64_t stale_discarded = 0;  // late duplicates (delay faults)
  std::uint64_t retransmits = 0;
  Real modeled_seconds_lost = 0;  // wire time of the failed deliveries
};

class ResilientChannel {
 public:
  ResilientChannel(Transport& transport, RetryPolicy policy, bool recover,
                   machine::Network network = {});

  /// Seal + post one message on the (from, to, tag) stream and retain a
  /// retransmit copy.
  void send(int from, int to, int tag, std::vector<Real> payload);

  /// Receive the next in-sequence message on the stream, recovering from
  /// drops/corruption per the retry policy. `expected_count` guards the
  /// payload length (halo exchange lists are index-aligned).
  std::vector<Real> recv(int to, int from, int tag,
                         std::size_t expected_count);

  /// Drain and discard late duplicates sitting in `keys`' queues; throws if
  /// a live (in-sequence) message is found — that is a protocol bug, not a
  /// stale leftover.
  void drain_stale(int to, int from, int tag);

  [[nodiscard]] ChannelStats stats() const;

 private:
  struct Key {
    int from, to, tag;
    bool operator<(const Key& o) const {
      return std::tie(from, to, tag) < std::tie(o.from, o.to, o.tag);
    }
  };
  struct Stream {
    std::uint64_t next_send_seq = 0;
    std::uint64_t next_recv_seq = 0;
    std::uint64_t retained_seq = 0;
    std::vector<Real> retained;  // newest payload, for retransmission
    // A retransmit has been posted for next_recv_seq and not yet consumed.
    // While set, damaged arrivals on the stream are casualties of the
    // reordering (a delayed original flushed ahead of the live resend) and
    // must not trigger — or count — another retransmit.
    bool resend_inflight = false;
  };

  void retransmit_locked(const Key& key, Stream& stream)
      MPAS_REQUIRES(mutex_);
  /// Shared detection outcome for recv: escalate (no recovery / attempts
  /// exhausted) or charge the lost wire time and retransmit. A member (not
  /// a lambda in recv) so the thread-safety analysis sees it runs under
  /// mutex_.
  void handle_fault_locked(const Key& key, Stream& stream, const char* what,
                           int& attempts) MPAS_REQUIRES(mutex_);

  Transport& transport_;
  RetryPolicy policy_;
  bool recover_;
  machine::Network network_;
  mutable util::Mutex mutex_{"resilience.channel",
                             util::lockrank::kChannel};
  std::map<Key, Stream> streams_ MPAS_GUARDED_BY(mutex_);
  ChannelStats stats_ MPAS_GUARDED_BY(mutex_);
};

}  // namespace mpas::resilience
