#include "exec/offload.hpp"

#include <numeric>

#include "obs/trace.hpp"
#include "resilience/fault_env.hpp"
#include "util/error.hpp"

namespace mpas::exec {

OffloadRuntime::OffloadRuntime(machine::TransferLink link,
                               TransferPolicy policy,
                               std::size_t device_memory_bytes)
    : link_(link), policy_(policy), device_memory_bytes_(device_memory_bytes) {
  auto& metrics = obs::MetricsRegistry::global();
  metric_bytes_ = &metrics.counter("offload.bytes_transferred");
  metric_transfers_ = &metrics.counter("offload.transfers");
  metric_retries_ = &metrics.counter("offload.transfer_retries");
  metric_transfer_bytes_ = &metrics.histogram("offload.transfer_bytes");
  // An MPAS_FAULT campaign attaches automatically so soak runs can inject
  // link faults without code changes; an explicit set_resilience call
  // overrides (or detaches with nullptr).
  if (auto* env = resilience::env_fault_injector())
    set_resilience(env, resilience::RetryPolicy{});
}

BufferId OffloadRuntime::register_buffer(std::string name, std::size_t bytes,
                                         BufferKind kind) {
  MPAS_CHECK_MSG(total_buffer_bytes() + bytes <= device_memory_bytes_,
                 "device memory exhausted registering '"
                     << name << "' (" << bytes << " B on top of "
                     << total_buffer_bytes() << " B, capacity "
                     << device_memory_bytes_ << " B)");
  buffers_.push_back(Buffer{std::move(name), bytes, kind, false, true});
  return static_cast<BufferId>(buffers_.size() - 1);
}

void OffloadRuntime::set_resilience(resilience::FaultInjector* injector,
                                    resilience::RetryPolicy retry,
                                    bool recover) {
  MPAS_CHECK_MSG(retry.max_attempts >= 1, "max_attempts must be >= 1");
  injector_ = injector;
  retry_ = retry;
  recover_ = recover;
}

Real OffloadRuntime::transfer(BufferId id, bool to_device) {
  Buffer& b = buffers_.at(static_cast<std::size_t>(id));
  // The span measures the bookkeeping call's wall time; the modeled wire
  // time rides along in args so the trace shows both.
  auto& rec = obs::TraceRecorder::global();
  obs::TraceSpan span(rec,
                      rec.enabled() ? "offload:" + b.name : std::string());
  Real total = 0;
  for (int attempt = 1;; ++attempt) {
    // Every attempt, failed or not, occupies the link for the full wire
    // time (a failed DMA is detected at completion, not at launch).
    const Real t = link_.time(static_cast<std::int64_t>(b.bytes));
    stats_.modeled_seconds += t;
    total += t;
    const char* fault = nullptr;
    if (injector_ != nullptr) {
      for (const auto& spec : injector_->on_transfer(id)) {
        fault = spec.kind == resilience::FaultKind::TransferCorrupt
                    ? "failed its integrity check"
                    : "aborted";
      }
    }
    if (fault == nullptr) break;
    stats_.transfer_faults += 1;
    MPAS_CHECK_MSG(recover_, "transfer of '" << b.name << "' " << fault
                                             << " (recovery disabled)");
    MPAS_CHECK_MSG(attempt < retry_.max_attempts,
                   "transfer of '" << b.name << "' " << fault << " on all "
                                   << retry_.max_attempts << " attempts");
    stats_.transfer_retries += 1;
    metric_retries_->add(1);
    MPAS_TRACE_INSTANT_ARGS("offload:retry",
                            obs::trace_arg("buffer", b.name) + "," +
                                obs::trace_arg("attempt", static_cast<
                                                   std::int64_t>(attempt)));
  }
  stats_.transfers += 1;
  if (to_device) {
    stats_.bytes_to_device += b.bytes;
    b.valid_on_device = true;
  } else {
    stats_.bytes_to_host += b.bytes;
    b.valid_on_host = true;
  }
  metric_transfers_->add(1);
  metric_bytes_->add(b.bytes);
  metric_transfer_bytes_->record(static_cast<double>(b.bytes));
  if (transfer_observer_)
    transfer_observer_({id, b.name, b.bytes, to_device});
  if (span.active())
    span.set_args(
        obs::trace_arg("bytes", static_cast<std::uint64_t>(b.bytes)) + "," +
        obs::trace_arg("direction", to_device ? "to_device" : "to_host") +
        "," + obs::trace_arg("modeled_s", static_cast<double>(total)));
  return total;
}

Real OffloadRuntime::initial_upload() {
  Real total = 0;
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    if (policy_ == TransferPolicy::ResidentMesh) {
      total += transfer(static_cast<BufferId>(i), /*to_device=*/true);
    }
    // OnDemand uploads nothing up front.
  }
  return total;
}

Real OffloadRuntime::ensure_on_device(BufferId id) {
  const Buffer& b = buffers_.at(static_cast<std::size_t>(id));
  if (b.valid_on_device) return 0;
  return transfer(id, /*to_device=*/true);
}

Real OffloadRuntime::ensure_on_host(BufferId id) {
  const Buffer& b = buffers_.at(static_cast<std::size_t>(id));
  if (b.valid_on_host) return 0;
  return transfer(id, /*to_device=*/false);
}

void OffloadRuntime::mark_written_on_device(BufferId id) {
  Buffer& b = buffers_.at(static_cast<std::size_t>(id));
  MPAS_CHECK_MSG(b.kind == BufferKind::ComputeData,
                 "mesh buffer '" << b.name << "' written during stepping");
  b.valid_on_device = true;
  b.valid_on_host = false;
}

void OffloadRuntime::mark_written_on_host(BufferId id) {
  Buffer& b = buffers_.at(static_cast<std::size_t>(id));
  MPAS_CHECK_MSG(b.kind == BufferKind::ComputeData,
                 "mesh buffer '" << b.name << "' written during stepping");
  b.valid_on_host = true;
  // Under OnDemand the device copy is re-uploaded before the next device
  // read; under ResidentMesh compute buffers behave the same way.
  b.valid_on_device = false;
}

void OffloadRuntime::end_offload_region() {
  if (policy_ != TransferPolicy::OnDemand) return;
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    // `#pragma offload out(...)`: device-written compute buffers are copied
    // back when the region closes; then nothing persists on the device.
    if (!buffers_[i].valid_on_host)
      transfer(static_cast<BufferId>(i), /*to_device=*/false);
    buffers_[i].valid_on_device = false;
  }
}

void OffloadRuntime::invalidate_device() {
  for (auto& b : buffers_) {
    b.valid_on_device = false;
    // Functionally every kernel wrote host memory (the device is modeled),
    // so the host copy is current even for buffers the bookkeeping had as
    // device-only; a real port would restore those from checkpoint.
    b.valid_on_host = true;
  }
  MPAS_TRACE_INSTANT("offload:invalidate_device");
}

Real OffloadRuntime::probe_link(std::size_t bytes) {
  MPAS_CHECK_MSG(bytes > 0, "probe payload must be non-empty");
  auto& rec = obs::TraceRecorder::global();
  obs::TraceSpan span(rec, rec.enabled() ? "offload:probe" : std::string());
  Real total = 0;
  // Two legs (up, back) so a one-way fault on either direction is seen.
  for (int leg = 0; leg < 2; ++leg) {
    for (int attempt = 1;; ++attempt) {
      const Real t = link_.time(static_cast<std::int64_t>(bytes));
      stats_.modeled_seconds += t;
      total += t;
      const char* fault = nullptr;
      if (injector_ != nullptr) {
        for (const auto& spec : injector_->on_transfer(/*buffer=*/-1)) {
          fault = spec.kind == resilience::FaultKind::TransferCorrupt
                      ? "failed its integrity check"
                      : "aborted";
        }
      }
      if (fault == nullptr) break;
      stats_.transfer_faults += 1;
      MPAS_CHECK_MSG(recover_,
                     "probe transfer " << fault << " (recovery disabled)");
      MPAS_CHECK_MSG(attempt < retry_.max_attempts,
                     "probe transfer " << fault << " on all "
                                       << retry_.max_attempts << " attempts");
      stats_.transfer_retries += 1;
      metric_retries_->add(1);
    }
  }
  if (span.active())
    span.set_args(
        obs::trace_arg("bytes", static_cast<std::uint64_t>(bytes)) + "," +
        obs::trace_arg("modeled_s", static_cast<double>(total)));
  return total;
}

std::size_t OffloadRuntime::total_buffer_bytes() const {
  return std::accumulate(buffers_.begin(), buffers_.end(), std::size_t{0},
                         [](std::size_t s, const Buffer& b) { return s + b.bytes; });
}

std::size_t OffloadRuntime::mesh_buffer_bytes() const {
  std::size_t s = 0;
  for (const auto& b : buffers_)
    if (b.kind == BufferKind::MeshData) s += b.bytes;
  return s;
}

std::size_t OffloadRuntime::buffer_bytes(BufferId id) const {
  return buffers_.at(static_cast<std::size_t>(id)).bytes;
}

const std::string& OffloadRuntime::buffer_name(BufferId id) const {
  return buffers_.at(static_cast<std::size_t>(id)).name;
}

}  // namespace mpas::exec
