#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace mpas {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MPAS_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  MPAS_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, expected "
                            << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::fixed(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    os << "\n";
  };

  std::ostringstream os;
  emit_row(os, headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += "\"";
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << escape(headers_[c]);
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << escape(row[c]);
    os << "\n";
  }
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  MPAS_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << to_csv();
}

}  // namespace mpas
