// Baseline comparison: diff two bench report sets with per-metric tolerance
// bands and classify every difference. Modeled series are deterministic
// machine-model outputs, so they carry a tight band; measured wall times get
// a wide CI-noise band; Informational series and attribution blocks are
// checked structurally (present, finite, metrics in range) but never gate
// on their values. The CLI wrapper (examples/bench_compare) exits nonzero
// iff ok() is false — that exit code is the CI perf gate.
#pragma once

#include <string>
#include <vector>

#include "bench_harness/report.hpp"

namespace mpas::bench_harness {

struct CompareOptions {
  double modeled_rel_tol = 0.05;   // modeled series: ±5%
  double measured_rel_tol = 4.0;   // measured series: 5x slower still passes
  double abs_tol = 1e-12;          // absolute slack for near-zero medians
  bool require_same_series = true; // baseline series missing now = failure
};

struct CompareIssue {
  enum class Severity { Regression, Structural, Improvement, Note };
  Severity severity = Severity::Note;
  std::string suite;
  std::string series;
  double baseline = 0;
  double current = 0;
  double ratio = 1.0;  // current / baseline medians
  std::string message;
};

const char* to_string(CompareIssue::Severity s);

struct CompareResult {
  std::vector<CompareIssue> issues;

  [[nodiscard]] int regressions() const;
  [[nodiscard]] int structural_failures() const;
  /// Gate predicate: no regressions and no structural failures.
  [[nodiscard]] bool ok() const {
    return regressions() == 0 && structural_failures() == 0;
  }

  [[nodiscard]] Table to_table() const;

  void merge(CompareResult other);
};

/// Compare two reports of the same suite.
CompareResult compare_reports(const BenchReport& baseline,
                              const BenchReport& current,
                              const CompareOptions& options);

/// Compare every BENCH_*.json in `baseline_dir` against its counterpart in
/// `current_dir`. A baseline suite with no counterpart is a structural
/// failure; extra suites in `current_dir` are noted only.
CompareResult compare_dirs(const std::string& baseline_dir,
                           const std::string& current_dir,
                           const CompareOptions& options);

}  // namespace mpas::bench_harness
