// Tests for the machine (roofline) model: preset sanity, monotonicity of
// the optimization ladder, and the qualitative relations the paper's
// figures depend on.
#include <gtest/gtest.h>

#include "machine/machine_model.hpp"

namespace mpas::machine {
namespace {

KernelCost gather_kernel() {
  // A representative stencil pattern: heavy indirect reads.
  return {.flops = 40,
          .bytes_streamed = 80,
          .bytes_gathered = 160,
          .bytes_written = 8};
}

KernelCost scatter_kernel() {
  KernelCost c = gather_kernel();
  c.scatter_writes = true;
  return c;
}

TEST(DeviceSpec, PeakFlopsMatchTableII) {
  EXPECT_NEAR(xeon_e5_2680v2().peak_gflops(), 224.0, 1.0);
  EXPECT_NEAR(xeon_phi_5110p().peak_gflops(), 1010.8, 3.0);
}

TEST(DeviceSpec, PhiReservesOneCoreForOffloadDaemon) {
  const DeviceSpec phi = xeon_phi_5110p();
  EXPECT_EQ(phi.compute_cores(), 59);
  EXPECT_EQ(xeon_e5_2680v2().compute_cores(), 10);
}

TEST(KernelTime, ZeroEntitiesCostsNothing) {
  EXPECT_EQ(kernel_time(xeon_phi_5110p(), gather_kernel(), 0,
                        OptLevel::Full),
            0.0);
}

TEST(KernelTime, ScalesLinearlyWithEntities) {
  const DeviceSpec d = xeon_e5_2680v2();
  const Real t1 = kernel_time(d, gather_kernel(), 1 << 20, OptLevel::Full);
  const Real t2 = kernel_time(d, gather_kernel(), 1 << 21, OptLevel::Full);
  // Linear up to the fixed region overhead.
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(KernelTime, OptimizationLadderIsMonotone) {
  // Each Figure 6 stage must be at least as fast as the previous one, on
  // both devices, for scatter kernels (the ones the ladder is about).
  for (const DeviceSpec& d : {xeon_e5_2680v2(), xeon_phi_5110p()}) {
    Real prev = kernel_time(d, scatter_kernel(), 1 << 22,
                            OptLevel::SerialBaseline);
    // OpenMP parallelizes the irregular variant (atomics) — may or may not
    // beat serial on the CPU, but from Refactored on it must be monotone.
    Real openmp = kernel_time(d, scatter_kernel(), 1 << 22, OptLevel::OpenMP);
    EXPECT_LT(openmp, prev) << d.name;
    prev = openmp;
    for (OptLevel opt : {OptLevel::Refactored, OptLevel::Simd,
                         OptLevel::Streaming, OptLevel::Full}) {
      const Real t = kernel_time(d, gather_kernel(), 1 << 22, opt);
      EXPECT_LE(t, prev * 1.0001) << d.name << " at " << to_string(opt);
      prev = t;
    }
  }
}

TEST(KernelTime, RefactoringBeatsAtomicsByALot) {
  // The heart of Figure 6: on the Phi, the refactored gather loop is much
  // faster than the atomic scatter loop at full threading.
  const DeviceSpec phi = xeon_phi_5110p();
  const Real atomic = kernel_time(phi, scatter_kernel(), 1 << 22,
                                  OptLevel::OpenMP);
  const Real gathered = kernel_time(phi, gather_kernel(), 1 << 22,
                                    OptLevel::Refactored);
  EXPECT_GT(atomic / gathered, 2.0);
}

TEST(KernelTime, PhiSerialCoreIsMuchSlowerThanXeonCore) {
  // In-order 1.05 GHz core vs out-of-order 2.8 GHz core on irregular code:
  // the factor that reconciles Figure 6 (~100x on-device speedup) with
  // Figure 7 (~8.35x total vs a Xeon core).
  const Real phi = kernel_time(xeon_phi_5110p(), gather_kernel(), 1 << 20,
                               OptLevel::SerialBaseline);
  const Real xeon = kernel_time(xeon_e5_2680v2(), gather_kernel(), 1 << 20,
                                OptLevel::SerialBaseline);
  EXPECT_GT(phi / xeon, 8.0);
  EXPECT_LT(phi / xeon, 40.0);
}

TEST(KernelTime, FullPhiAndFullHostAreComparable) {
  // The hybrid design pays off precisely because neither side dominates:
  // per Figure 7, the fully-optimized Phi and the 10-core host contribute
  // comparable throughput on the gather-heavy patterns.
  const Real phi = kernel_time(xeon_phi_5110p(), gather_kernel(), 1 << 22,
                               OptLevel::Full);
  const Real host = kernel_time(xeon_e5_2680v2(), gather_kernel(), 1 << 22,
                                OptLevel::Full);
  EXPECT_GT(phi / host, 0.6);
  EXPECT_LT(phi / host, 1.5);
}

TEST(KernelTime, MoreThreadsNeverSlower) {
  const DeviceSpec phi = xeon_phi_5110p();
  Real prev = 1e30;
  for (int threads : {1, 4, 16, 60, 120, 236}) {
    const Real t = kernel_time(phi, gather_kernel(), 1 << 22,
                               OptLevel::Refactored, threads);
    EXPECT_LE(t, prev * 1.0001) << threads;
    prev = t;
  }
}

TEST(TransferLink, TimeHasLatencyPlusBandwidthShape) {
  const TransferLink link;
  const Real small = link.time(8);
  const Real large = link.time(1 << 30);
  EXPECT_GT(small, 0);
  EXPECT_NEAR(large, (1 << 30) / (link.bandwidth_gbs * 1e9), small * 2);
  // 5.3 GB (the paper's 15-km working set) should take seconds, not ms.
  const Real full = link.time(5'300'000'000LL);
  EXPECT_GT(full, 0.5);
  EXPECT_LT(full, 2.0);
}

TEST(Network, MessageTimeMonotoneInSize) {
  const Network net;
  EXPECT_LT(net.message_time(1024), net.message_time(1024 * 1024));
  EXPECT_GT(net.message_time(0), 0);  // latency floor
}

TEST(OptLevelNames, MatchFigureSixLabels) {
  EXPECT_STREQ(to_string(OptLevel::SerialBaseline), "Baseline");
  EXPECT_STREQ(to_string(OptLevel::OpenMP), "OpenMP");
  EXPECT_STREQ(to_string(OptLevel::Refactored), "Refactoring");
  EXPECT_STREQ(to_string(OptLevel::Simd), "SIMD");
  EXPECT_STREQ(to_string(OptLevel::Streaming), "Streaming");
  EXPECT_STREQ(to_string(OptLevel::Full), "Others");
}

}  // namespace
}  // namespace mpas::machine
