#include "resilience/durable/writer.hpp"

#include <chrono>
#include <utility>

#include "obs/metrics.hpp"

namespace mpas::resilience::durable {

DurableWriter::DurableWriter(DurableStore& store, PublishCallback on_publish)
    : store_(store), on_publish_(std::move(on_publish)) {
  thread_ = std::thread([this] { loop(); });
}

DurableWriter::~DurableWriter() {
  {
    util::LockGuard lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void DurableWriter::submit(CheckpointImage image) {
  {
    util::LockGuard lock(mutex_);
    if (staged_.has_value()) {
      // Latest-wins: the disk is behind the integrator; recovery only ever
      // wants the newest state, so the stale staged image is dead weight.
      dropped_ += 1;
      obs::MetricsRegistry::global()
          .counter("resilience.durable.dropped")
          .add(1);
    }
    staged_ = std::move(image);
  }
  work_cv_.notify_one();
}

bool DurableWriter::flush(long timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  util::UniqueLock lock(mutex_);
  while (staged_.has_value() || writing_) {
    if (idle_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        (staged_.has_value() || writing_))
      return false;
  }
  return true;
}

std::uint64_t DurableWriter::published() const {
  util::LockGuard lock(mutex_);
  return published_;
}

std::uint64_t DurableWriter::dropped() const {
  util::LockGuard lock(mutex_);
  return dropped_;
}

void DurableWriter::loop() {
  for (;;) {
    CheckpointImage image;
    {
      util::UniqueLock lock(mutex_);
      while (!staged_.has_value() && !shutdown_) work_cv_.wait(lock);
      if (!staged_.has_value() && shutdown_) return;
      image = std::move(*staged_);
      staged_.reset();
      writing_ = true;
    }
    // Publish (and notify) strictly outside the lock: the fsync protocol is
    // file I/O and the callback takes journal/metrics locks.
    const PublishResult result = store_.publish(image);
    if (on_publish_) on_publish_(image, result);
    {
      util::LockGuard lock(mutex_);
      writing_ = false;
      if (result.published) published_ += 1;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace mpas::resilience::durable
