// Tests for the pattern-loop code generator: structural properties of the
// emitted source for every variant, and a semantic-twin check that the
// exact loop shape generated for the divergence pattern computes the same
// values as the handwritten kernel.
#include <gtest/gtest.h>

#include "core/codegen.hpp"
#include "mesh/mesh_cache.hpp"
#include "sw/kernels.hpp"
#include "util/error.hpp"

namespace mpas::core {
namespace {

LoopSpec divergence_spec() {
  LoopSpec s;
  s.name = "divergence";
  s.kind = PatternKind::A;
  s.contribution = "m.dv_edge[e] * u[e]";
  s.oriented = true;
  s.normalize = "/ m.area_cell[c]";
  s.output = "div";
  return s;
}

TEST(Codegen, BranchFreeUsesLabelMatrixWithoutBranches) {
  const std::string code =
      generate_loop(divergence_spec(), VariantChoice::BranchFree);
  EXPECT_NE(code.find("m.edge_sign_on_cell(c, j) *"), std::string::npos);
  EXPECT_EQ(code.find("if ("), std::string::npos);
  EXPECT_NE(code.find("divergence_branch_free"), std::string::npos);
  EXPECT_NE(code.find("/ m.area_cell[c]"), std::string::npos);
}

TEST(Codegen, RefactoredUsesOrientationBranch) {
  const std::string code =
      generate_loop(divergence_spec(), VariantChoice::Refactored);
  EXPECT_NE(code.find("if (m.edge_sign_on_cell(c, j) > 0)"),
            std::string::npos);
  EXPECT_NE(code.find("acc += "), std::string::npos);
  EXPECT_NE(code.find("acc -= "), std::string::npos);
}

TEST(Codegen, IrregularScattersIntoBothEndpoints) {
  const std::string code =
      generate_loop(divergence_spec(), VariantChoice::Irregular);
  EXPECT_NE(code.find("div[m.cells_on_edge(e, 0)] += contrib"),
            std::string::npos);
  EXPECT_NE(code.find("div[m.cells_on_edge(e, 1)] -= contrib"),
            std::string::npos);
  EXPECT_NE(code.find("racy under threads"), std::string::npos);
}

TEST(Codegen, VertexPatternGeneratesVertexTraversal) {
  LoopSpec s;
  s.name = "circulation";
  s.kind = PatternKind::D;
  s.contribution = "m.dc_edge[e] * u[e]";
  s.oriented = true;
  s.normalize = "/ m.area_triangle[v]";
  const std::string gather = generate_loop(s, VariantChoice::BranchFree);
  EXPECT_NE(gather.find("m.edges_on_vertex(v, j)"), std::string::npos);
  EXPECT_NE(gather.find("m.edge_sign_on_vertex(v, j) *"), std::string::npos);
  const std::string scatter = generate_loop(s, VariantChoice::Irregular);
  EXPECT_NE(scatter.find("m.vertices_on_edge(e, k)"), std::string::npos);
}

TEST(Codegen, UnsignedKindsHaveNoIrregularForm) {
  LoopSpec s;
  s.name = "h_vertex";
  s.kind = PatternKind::E;
  s.contribution = "m.kite_areas_on_vertex(v, j) * h[c]";
  s.normalize = "/ m.area_triangle[v]";
  EXPECT_THROW(
      static_cast<void>(generate_loop(s, VariantChoice::Irregular)), Error);
  const std::string gather = generate_loop(s, VariantChoice::Refactored);
  EXPECT_NE(gather.find("m.cells_on_vertex(v, j)"), std::string::npos);
  EXPECT_EQ(gather.find("if ("), std::string::npos);  // nothing to branch on
}

TEST(Codegen, TrivialKindsAreRejected) {
  LoopSpec s;
  s.name = "h_edge";
  s.kind = PatternKind::C;
  s.contribution = "h[c]";
  EXPECT_THROW(static_cast<void>(generate_loop(s, VariantChoice::Refactored)),
               Error);
}

TEST(Codegen, AllVariantsBundlesTheRightSet) {
  const std::string all = generate_all_variants(divergence_spec());
  EXPECT_NE(all.find("divergence_irregular"), std::string::npos);
  EXPECT_NE(all.find("divergence_refactored"), std::string::npos);
  EXPECT_NE(all.find("divergence_branch_free"), std::string::npos);

  LoopSpec f;
  f.name = "v_tangent";
  f.kind = PatternKind::F;
  f.contribution = "m.weights_on_edge(e, j) * u[eoe]";
  const std::string fa = generate_all_variants(f);
  EXPECT_EQ(fa.find("irregular"), std::string::npos);
  EXPECT_NE(fa.find("m.edges_on_edge(e, j)"), std::string::npos);
}

// Semantic twin: this function is byte-for-byte the loop shape the
// generator emits for divergence_branch_free (modulo the signature). If the
// generator's template drifts from the real kernels, this test documents
// the contract.
void generated_divergence_branch_free(const mesh::VoronoiMesh& m,
                                      std::span<const Real> u,
                                      std::span<Real> div) {
  for (Index c = 0; c < m.num_cells; ++c) {
    Real acc = 0;
    for (Index j = 0; j < m.n_edges_on_cell[c]; ++j) {
      const Index e = m.edges_on_cell(c, j);
      acc += m.edge_sign_on_cell(c, j) * (m.dv_edge[e] * u[e]);
    }
    div[c] = acc / m.area_cell[c];
  }
}

TEST(Codegen, GeneratedShapeMatchesHandwrittenKernel) {
  const auto mesh = mesh::get_global_mesh(3);
  sw::FieldStore fields(*mesh);
  for (Index e = 0; e < mesh->num_edges; ++e)
    fields.get(sw::FieldId::U)[e] = std::sin(0.01 * e);

  sw::SwParams params;
  sw::SwContext ctx{*mesh, fields, params, 0, 0};
  sw::diag_divergence(ctx, sw::FieldId::U, 0, mesh->num_cells,
                      sw::LoopVariant::BranchFree);
  std::vector<Real> twin(static_cast<std::size_t>(mesh->num_cells));
  generated_divergence_branch_free(*mesh, fields.get(sw::FieldId::U), twin);

  const auto div = fields.get(sw::FieldId::Divergence);
  for (Index c = 0; c < mesh->num_cells; ++c) ASSERT_EQ(twin[c], div[c]);
}

}  // namespace
}  // namespace mpas::core
