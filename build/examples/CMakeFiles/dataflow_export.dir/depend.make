# Empty dependencies file for dataflow_export.
# This may be replaced when dependencies are built.
