// The simulation service's contract, bottom-up: deterministic pricing,
// every rung of the admission ladder with its explicit reason, DWRR
// dispatch fairness, refcounted mesh sharing, and the SessionManager's
// end-to-end guarantees — bitwise-correct admitted runs, retry with
// modeled backoff, cooperative cancellation, modeled deadlines, and
// per-session fault isolation under a mid-run quarantine.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/telemetry/flight_recorder.hpp"
#include "obs/telemetry/slo.hpp"
#include "service/admission.hpp"
#include "service/fair_queue.hpp"
#include "service/mesh_store.hpp"
#include "service/request.hpp"
#include "service/session.hpp"
#include "service/session_manager.hpp"
#include "util/error.hpp"

namespace mpas::service {
namespace {

SessionRequest small_request(const std::string& tenant = "default") {
  SessionRequest req;
  req.tenant = tenant;
  req.mesh_level = 2;
  req.test_case = 2;
  req.steps = 4;
  req.output_every = 2;
  return req;
}

// ------------------------------------------------------------- cost model

TEST(CostModel, PricingIsDeterministicAndMonotonic) {
  const CostModel costs;
  const SessionRequest req = small_request();
  EXPECT_GT(costs.price(req), 0);
  EXPECT_EQ(costs.price(req), costs.price(req));

  SessionRequest finer = req;
  finer.mesh_level = 4;
  EXPECT_GT(costs.price(finer), costs.price(req));

  SessionRequest longer = req;
  longer.steps = 8;
  EXPECT_GT(costs.price(longer), costs.price(req));

  SessionRequest chattier = req;
  chattier.output_every = 1;
  EXPECT_GT(costs.price(chattier), costs.price(req));
}

// -------------------------------------------------------- admission ladder

class AdmissionLadder : public ::testing::Test {
 protected:
  AdmissionLadder() : costs_() {
    policy_.max_queued_per_tenant = 4;
    // Capacity sized in units of the level-2 request so each rung is easy
    // to force: room for ~2 such sessions.
    policy_.capacity_modeled_s = 2.5 * costs_.price(small_request());
  }
  CostModel costs_;
  AdmissionPolicy policy_;
};

TEST_F(AdmissionLadder, AdmitsWithinGuarantee) {
  const AdmissionController admission(policy_, &costs_);
  const auto verdict = admission.decide(small_request(), {});
  EXPECT_EQ(verdict.action, AdmissionOutcome::Action::Admit);
  EXPECT_FALSE(verdict.borrowed);
  EXPECT_TRUE(verdict.shed.empty());
}

TEST_F(AdmissionLadder, BackpressureRejectsFloodingTenant) {
  const AdmissionController admission(policy_, &costs_);
  AdmissionInput input;
  input.queued_of_tenant = policy_.max_queued_per_tenant;
  const auto verdict = admission.decide(small_request(), input);
  EXPECT_EQ(verdict.action, AdmissionOutcome::Action::Reject);
  EXPECT_NE(verdict.reason.find("backpressure"), std::string::npos);
}

TEST_F(AdmissionLadder, LoneTenantBorrowsSpareCapacity) {
  AdmissionController admission(policy_, &costs_);
  admission.set_tenant_weight("a", 1.0);
  admission.set_tenant_weight("b", 1.0);
  // Tenant a's guarantee is half the capacity; with b idle, a's second
  // session still fits and is admitted as borrowed.
  const Real cost = costs_.price(small_request("a"));
  AdmissionInput input;
  input.outstanding_total = cost;
  input.outstanding_by_tenant["a"] = cost;
  const auto verdict = admission.decide(small_request("a"), input);
  EXPECT_EQ(verdict.action, AdmissionOutcome::Action::Admit);
  EXPECT_TRUE(verdict.borrowed);
}

TEST_F(AdmissionLadder, GuaranteeReclaimsBorrowedQueueSlot) {
  AdmissionController admission(policy_, &costs_);
  admission.set_tenant_weight("a", 1.0);
  admission.set_tenant_weight("b", 1.0);
  const Real cost = costs_.price(small_request("a"));
  // Tenant a has filled the service past b's guarantee with one borrowed
  // *queued* session; b's first submission reclaims exactly that slot.
  AdmissionInput input;
  input.outstanding_total = 2 * cost;
  input.outstanding_by_tenant["a"] = 2 * cost;
  input.queued.push_back({7, "a", 1, cost, /*borrowed=*/true, /*seq=*/7});
  const auto verdict = admission.decide(small_request("b"), input);
  ASSERT_EQ(verdict.action, AdmissionOutcome::Action::Admit);
  EXPECT_EQ(verdict.reason_code, ReasonCode::AdmitReclaimed);
  ASSERT_EQ(verdict.shed.size(), 1u);
  EXPECT_EQ(verdict.shed[0].id, 7u);
  EXPECT_EQ(verdict.shed[0].code, ReasonCode::ShedReclaimed);
  EXPECT_NE(verdict.shed[0].reason.find("reclaimed"), std::string::npos);
}

TEST_F(AdmissionLadder, BurnRateChangesTheVerdict) {
  // The SLO coupling: an identical submission is rejected at burn 0 and
  // admitted (by reclaiming a borrower) when the tenant is burning its
  // error budget at twice the refill rate.
  const Real unit = costs_.price(small_request());
  policy_.capacity_modeled_s = 4 * unit;
  AdmissionController admission(policy_, &costs_);
  admission.set_tenant_weight("a", 1.0);
  admission.set_tenant_weight("b", 1.0);

  // a is 0.5 units over its 2-unit guarantee with one borrowed queued
  // session; b is already at 1.5 units, so one more unit lands beyond b's
  // guarantee and the reclaim rung normally refuses to thrash for it.
  AdmissionInput input;
  input.outstanding_total = 4 * unit;
  input.outstanding_by_tenant["a"] = 2.5 * unit;
  input.outstanding_by_tenant["b"] = 1.5 * unit;
  input.queued.push_back({7, "a", 1, 1.5 * unit, /*borrowed=*/true, 7});
  SessionRequest req = small_request("b");
  req.allow_degraded = false;

  const auto calm = admission.decide(req, input);
  EXPECT_EQ(calm.action, AdmissionOutcome::Action::Reject);
  EXPECT_EQ(calm.reason_code, ReasonCode::RejectOverload);

  input.tenant_burn_rate = 3.0;  // >= slo_burn_guarantee (2.0)
  const auto burning = admission.decide(req, input);
  ASSERT_EQ(burning.action, AdmissionOutcome::Action::Admit);
  EXPECT_EQ(burning.reason_code, ReasonCode::AdmitReclaimed);
  EXPECT_NE(burning.reason.find("SLO burn-rate priority"),
            std::string::npos);
  ASSERT_EQ(burning.shed.size(), 1u);
  EXPECT_EQ(burning.shed[0].id, 7u);
  EXPECT_EQ(burning.shed[0].code, ReasonCode::ShedReclaimed);
  EXPECT_NE(burning.shed[0].reason.find("SLO burn-rate priority"),
            std::string::npos);
}

TEST_F(AdmissionLadder, PrioritySheddingEvictsLowestYoungest) {
  const AdmissionController admission(policy_, &costs_);
  const Real cost = costs_.price(small_request());
  AdmissionInput input;
  input.outstanding_total = 2.4 * cost;
  input.outstanding_by_tenant["default"] = 2.4 * cost;
  input.queued.push_back({3, "default", 1, cost, false, 3});
  input.queued.push_back({5, "default", 1, cost, false, 5});  // youngest
  SessionRequest urgent = small_request();
  urgent.priority = 9;
  const auto verdict = admission.decide(urgent, input);
  ASSERT_EQ(verdict.action, AdmissionOutcome::Action::Admit);
  EXPECT_EQ(verdict.reason_code, ReasonCode::AdmitAfterShed);
  ASSERT_GE(verdict.shed.size(), 1u);
  EXPECT_EQ(verdict.shed[0].id, 5u);  // lowest priority, youngest first
  EXPECT_EQ(verdict.shed[0].code, ReasonCode::ShedPriority);
  EXPECT_NE(verdict.shed[0].reason.find("shed"), std::string::npos);
}

TEST_F(AdmissionLadder, OverloadDegradesFidelityWithReason) {
  const AdmissionController admission(policy_, &costs_);
  // A level-4 run alone exceeds the (level-2-sized) capacity; nothing is
  // queued to shed, so the ladder lands on degradation.
  SessionRequest big = small_request();
  big.mesh_level = 4;
  big.priority = 0;
  const auto verdict = admission.decide(big, {});
  ASSERT_EQ(verdict.action, AdmissionOutcome::Action::AdmitDegraded);
  EXPECT_LT(verdict.effective.mesh_level, big.mesh_level);
  EXPECT_GT(verdict.effective.output_every, big.output_every);
  EXPECT_NE(verdict.reason.find("degraded under overload"),
            std::string::npos);
}

TEST_F(AdmissionLadder, RejectionCarriesTheArithmetic) {
  const AdmissionController admission(policy_, &costs_);
  SessionRequest big = small_request();
  big.mesh_level = 4;
  big.allow_degraded = false;
  const auto verdict = admission.decide(big, {});
  ASSERT_EQ(verdict.action, AdmissionOutcome::Action::Reject);
  EXPECT_NE(verdict.reason.find("overload"), std::string::npos);
  EXPECT_NE(verdict.reason.find("not permitted"), std::string::npos);
}

// ------------------------------------------------------------- fair queue

TEST(FairQueue, DwrrServesTenantsByWeight) {
  FairQueue queue;
  queue.set_weight("heavy", 3.0);
  queue.set_weight("light", 1.0);
  std::uint64_t id = 1;
  for (int i = 0; i < 12; ++i) {
    queue.push({id, "heavy", 1, 1.0, false, id});
    ++id;
    queue.push({id, "light", 1, 1.0, false, id});
    ++id;
  }
  std::map<std::string, int> served;
  for (int i = 0; i < 16; ++i) {
    const auto e = queue.pop();
    ASSERT_TRUE(e.has_value());
    served[e->tenant] += 1;
  }
  // 3:1 weights over equal-cost work: heavy gets ~12 of 16 pops.
  EXPECT_GE(served["heavy"], 11);
  EXPECT_LE(served["heavy"], 13);
}

TEST(FairQueue, RemoveEvictsQueuedEntry) {
  FairQueue queue;
  queue.push({1, "a", 1, 1.0, false, 1});
  queue.push({2, "a", 1, 1.0, false, 2});
  EXPECT_TRUE(queue.remove(1));
  EXPECT_FALSE(queue.remove(1));
  const auto e = queue.pop();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->id, 2u);
  EXPECT_TRUE(queue.empty());
}

// -------------------------------------------------------------- mesh store

TEST(MeshStore, CoResidentSessionsShareOneMesh) {
  MeshStore store;
  {
    const MeshLease a = store.acquire(2);
    const MeshLease b = store.acquire(2);
    EXPECT_EQ(a.get(), b.get());  // one instance, two refs
    EXPECT_EQ(store.refs(2), 2);
    EXPECT_EQ(store.resident_levels(), 1u);
  }
  EXPECT_EQ(store.refs(2), 0);
  EXPECT_EQ(store.resident_levels(), 0u);
}

// ---------------------------------------------------------- session manager

ServiceOptions small_service(int workers = 2) {
  ServiceOptions opts;
  opts.workers = workers;
  const CostModel costs;
  opts.admission.capacity_modeled_s = 100 * costs.price(small_request());
  return opts;
}

TEST(SessionManager, AdmittedSessionsCompleteBitwiseCorrect) {
  SessionManager service(small_service());
  const auto id1 = service.submit(small_request("a"));
  const auto id2 = service.submit(small_request("b"));
  ASSERT_TRUE(service.drain());

  for (const auto id : {id1, id2}) {
    const SessionResult r = service.result(id);
    EXPECT_EQ(r.state, SessionState::Completed) << r.reason;
    EXPECT_EQ(r.reason_code, ReasonCode::Completed);
    EXPECT_EQ(r.steps_done, 4);
    EXPECT_EQ(r.outputs_written, 2);
    EXPECT_EQ(r.replans, 0);
    EXPECT_GT(r.modeled_seconds, 0);
    // The service ran a hybrid schedule; the hash must still match the
    // plain reference integrator bit for bit.
    EXPECT_EQ(r.state_hash, reference_hash(r.mesh_level_used, 2, 4));
  }
}

TEST(SessionManager, TransientFaultsRetryWithBackoffThenSucceed) {
  SessionManager service(small_service(1));
  SessionRequest req = small_request();
  req.chaos.fail_first_attempts = 2;
  const auto id = service.submit(req);
  ASSERT_TRUE(service.drain());

  const SessionResult r = service.result(id);
  EXPECT_EQ(r.state, SessionState::Completed) << r.reason;
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(service.stats().retries, 2u);
  // Backoff was charged as modeled time on top of the run itself.
  EXPECT_GT(r.modeled_seconds, r.step_modeled_seconds[0] * 4);
}

TEST(SessionManager, PersistentTransientFaultFailsAfterBudget) {
  SessionManager service(small_service(1));
  SessionRequest req = small_request();
  req.chaos.fail_first_attempts = 100;
  const auto id = service.submit(req);
  ASSERT_TRUE(service.drain());

  const SessionResult r = service.result(id);
  EXPECT_EQ(r.state, SessionState::Failed);
  EXPECT_EQ(r.reason_code, ReasonCode::TransientExhausted);
  EXPECT_NE(r.reason.find("transient fault persisted"), std::string::npos);
}

TEST(SessionManager, DeadlineHonoredAtStepBoundary) {
  SessionManager service(small_service(1));
  SessionRequest req = small_request();
  req.steps = 50;
  const CostModel costs;
  // Budget for roughly three steps of a 50-step run.
  req.deadline_modeled_s = 3.2 * costs.step_seconds(req.mesh_level);
  const auto id = service.submit(req);
  ASSERT_TRUE(service.drain());

  const SessionResult r = service.result(id);
  EXPECT_EQ(r.state, SessionState::TimedOut);
  EXPECT_EQ(r.reason_code, ReasonCode::DeadlineExceeded);
  EXPECT_GT(r.steps_done, 0);
  EXPECT_LT(r.steps_done, 50);
  EXPECT_NE(r.reason.find("deadline"), std::string::npos);
}

TEST(SessionManager, CancelQueuedAndRunningSessions) {
  SessionManager service(small_service(1));
  service.set_paused(true);
  const auto id1 = service.submit(small_request());
  const auto id2 = service.submit(small_request());
  // id2 is queued behind id1 and paused; evict it before dispatch.
  EXPECT_TRUE(service.cancel(id2));
  EXPECT_EQ(service.result(id2).state, SessionState::Cancelled);
  EXPECT_EQ(service.result(id2).reason_code, ReasonCode::CancelledByUser);
  service.set_paused(false);
  ASSERT_TRUE(service.drain());
  EXPECT_EQ(service.result(id1).state, SessionState::Completed);
  EXPECT_FALSE(service.cancel(id1));  // already terminal
}

TEST(SessionManager, QuarantineDegradesOnlyTheVictimSession) {
  SessionManager service(small_service(2));
  SessionRequest victim = small_request("victim");
  victim.steps = 8;
  victim.chaos.quarantine_accel_at_step = 3;
  SessionRequest bystander = small_request("bystander");
  bystander.steps = 8;

  const auto vid = service.submit(victim);
  const auto bid = service.submit(bystander);
  ASSERT_TRUE(service.drain());

  const SessionResult v = service.result(vid);
  const SessionResult b = service.result(bid);
  // The victim healed: quarantined its device, replanned, still bitwise.
  EXPECT_EQ(v.state, SessionState::Completed) << v.reason;
  EXPECT_GE(v.replans, 1);
  EXPECT_EQ(v.state_hash, reference_hash(v.mesh_level_used, 2, 8));
  // The co-resident session never noticed.
  EXPECT_EQ(b.state, SessionState::Completed) << b.reason;
  EXPECT_EQ(b.replans, 0);
  EXPECT_EQ(b.state_hash, v.state_hash);  // same experiment, same bits
}

TEST(SessionManager, ThrowingSessionFailsAloneAndServiceSurvives) {
  SessionManager service(small_service(2));
  SessionRequest bad = small_request();
  bad.test_case = 99;  // make_test_case throws
  const auto bad_id = service.submit(bad);
  const auto good_id = service.submit(small_request());
  ASSERT_TRUE(service.drain());

  EXPECT_EQ(service.result(bad_id).state, SessionState::Failed);
  EXPECT_EQ(service.result(bad_id).reason_code, ReasonCode::SessionFault);
  EXPECT_NE(service.result(bad_id).reason.find("session threw"),
            std::string::npos);
  EXPECT_EQ(service.result(good_id).state, SessionState::Completed);
  // The service still takes work after a member died.
  const auto next = service.submit(small_request());
  ASSERT_TRUE(service.drain());
  EXPECT_EQ(service.result(next).state, SessionState::Completed);
}

TEST(SessionManager, SaturationSharesFollowTenantWeights) {
  // Capacity for ~6 small sessions; tenants weighted 2:1 submit 12 each
  // round-robin while dispatch is paused, so admission alone decides who
  // gets capacity. Admitted-work shares must land within 10% of 2/3:1/3.
  ServiceOptions opts;
  opts.workers = 2;
  const CostModel costs;
  const Real unit = costs.price(small_request());
  opts.admission.capacity_modeled_s = 6 * unit + unit / 2;
  opts.admission.max_queued_per_tenant = 32;
  SessionManager service(opts);
  service.set_tenant_weight("gold", 2.0);
  service.set_tenant_weight("bronze", 1.0);
  service.set_paused(true);
  for (int i = 0; i < 12; ++i) {
    SessionRequest gold = small_request("gold");
    SessionRequest bronze = small_request("bronze");
    gold.allow_degraded = bronze.allow_degraded = false;
    service.submit(gold);
    service.submit(bronze);
  }
  const ServiceStats at_saturation = service.stats();
  service.set_paused(false);
  ASSERT_TRUE(service.drain());

  const Real gold_s = at_saturation.admitted_seconds_by_tenant.at("gold");
  const Real bronze_s =
      at_saturation.admitted_seconds_by_tenant.at("bronze");
  const Real share = gold_s / (gold_s + bronze_s);
  EXPECT_NEAR(share, 2.0 / 3.0, 0.1 * 2.0 / 3.0);
  EXPECT_GT(service.stats().rejected, 0u);  // it really was saturated
}

// -------------------------------------------------- slo + flight recorder

TEST(SessionManager, SloTrackerFollowsSessionOutcomes) {
  ServiceOptions opts = small_service(1);
  SessionManager service(opts);
  service.submit(small_request("a"));
  SessionRequest doomed = small_request("a");
  doomed.chaos.fail_first_attempts = 100;
  service.submit(doomed);
  ASSERT_TRUE(service.drain());

  namespace telemetry = obs::telemetry;
  const telemetry::SloTracker& slo = service.slo();
  // Two sessions ran: one completed, one failed -> error-rate attainment
  // is 1/2 and its budget (default target 0.95) is burning hard.
  EXPECT_EQ(slo.samples("a", telemetry::SloDimension::ErrorRate), 2u);
  EXPECT_DOUBLE_EQ(slo.attainment("a", telemetry::SloDimension::ErrorRate),
                   0.5);
  EXPECT_GT(slo.worst_burn_rate("a"), 1.0);
  // Neither timed out, so the deadline dimension is clean.
  EXPECT_DOUBLE_EQ(
      slo.attainment("a", telemetry::SloDimension::DeadlineMiss), 1.0);
  // The failure breached the error SLO and the service counted it.
  EXPECT_GE(service.stats().slo_breaches, 1u);
}

TEST(SessionManager, FailureDumpsTheFlightRecorder) {
  const std::string dir = "test_flight_dumps";
  std::filesystem::remove_all(dir);
  ServiceOptions opts = small_service(1);
  opts.flight_dump = obs::telemetry::FlightDumpPolicy::parse(dir);
  SessionManager service(opts);

  const auto ok_id = service.submit(small_request("fine"));
  SessionRequest doomed = small_request("doomed");
  doomed.chaos.fail_first_attempts = 100;
  const auto bad_id = service.submit(doomed);
  ASSERT_TRUE(service.drain());
  ASSERT_EQ(service.result(ok_id).state, SessionState::Completed);
  ASSERT_EQ(service.result(bad_id).state, SessionState::Failed);

  // Only the failure produced a black box; the healthy session stayed
  // output-free.
  EXPECT_EQ(service.stats().flight_dumps, 1u);
  const std::string ok_path =
      dir + "/flight_session" + std::to_string(ok_id) + ".json";
  EXPECT_FALSE(std::filesystem::exists(ok_path));

  const std::string bad_path =
      dir + "/flight_session" + std::to_string(bad_id) + ".json";
  std::ifstream in(bad_path);
  ASSERT_TRUE(in.good()) << bad_path;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const auto doc = obs::json::parse(text);
  EXPECT_EQ(doc.at("trigger").as_string(), "failure");
  EXPECT_EQ(doc.at("tenant").as_string(), "doomed");
  EXPECT_DOUBLE_EQ(doc.at("session").as_number(),
                   static_cast<double>(bad_id));
  // The box replays the session's fate: admission, dispatch, the retry
  // storm, and the terminal verdict.
  std::map<std::string, int> kinds;
  for (const auto& e : doc.at("events").as_array())
    kinds[e.at("kind").as_string()] += 1;
  EXPECT_EQ(kinds["admission"], 1);
  EXPECT_EQ(kinds["dispatch"], 1);
  EXPECT_GE(kinds["retry"], 2);
  EXPECT_EQ(kinds["terminal"], 1);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mpas::service
