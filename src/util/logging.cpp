#include "util/logging.hpp"

#include <cstdio>

namespace mpas {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  static const char* kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(stderr, "[%s] %s\n", kNames[idx], message.c_str());
}

}  // namespace mpas
