// Regenerates Table I: every pattern instance of the shallow-water model
// grouped by kernel, with its input and output variables — read off the
// data-flow graphs rather than hand-maintained. Also prints the Figure 3
// pattern taxonomy.
#include <cstdio>
#include <set>

#include "bench_common.hpp"

using namespace mpas;

namespace {

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ", ";
    out += v[i];
  }
  return out;
}

void emit_graph_rows(Table& t, const core::DataflowGraph& g,
                     const char* phase, std::set<std::string>& seen) {
  for (const auto& node : g.nodes()) {
    // The same pattern instance appears in both substep graphs; report it
    // once (keyed by label + kernel + inputs).
    const std::string key =
        node.label + "|" + to_string(node.kernel) + "|" + join(node.inputs);
    if (!seen.insert(key).second) continue;
    t.add_row({to_string(node.kernel), node.label,
               std::string(core::to_string(node.kind)), phase,
               join(node.inputs), join(node.outputs)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::bench_init(argc, argv, "table1_patterns");
  std::printf("== Table I: patterns and their input/output variables ==\n\n");

  std::printf("Figure 3 stencil taxonomy (this reproduction's lettering):\n");
  for (int k = 0; k < 9; ++k) {
    const auto kind = static_cast<core::PatternKind>(k);
    std::printf("  %s: %s\n", core::to_string(kind),
                core::pattern_description(kind));
  }
  std::printf("\n");

  const sw::SwGraphs graphs = sw::build_sw_graphs(nullptr, true);
  Table t({"kernel", "pattern", "kind", "first appears in", "input", "output"});
  std::set<std::string> seen;
  emit_graph_rows(t, graphs.setup, "step setup", seen);
  emit_graph_rows(t, graphs.early, "RK_step<4", seen);
  emit_graph_rows(t, graphs.final, "RK_step==4", seen);
  bench::emit(t, "table1_patterns");
  bench::add_info("distinct_pattern_instances",
                  static_cast<Real>(t.rows().size()), "count");
  bench::add_info("early_substep_nodes",
                  static_cast<Real>(graphs.early.num_nodes()), "count");

  // Concurrency annotation of Figure 4: independent sets per level.
  std::printf("Independent pattern sets per dependency level (early substep):\n");
  const auto sets = graphs.early.independent_sets();
  bench::add_info("early_dependency_levels", static_cast<Real>(sets.size()),
                  "count");
  for (std::size_t l = 0; l < sets.size(); ++l) {
    std::printf("  level %zu:", l);
    for (int id : sets[l])
      std::printf(" %s", graphs.early.node(id).label.c_str());
    std::printf("\n");
  }
  return 0;
}
