#include "sw/invariants.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mpas::sw {

Real Invariants::mass_drift(const Invariants& initial) const {
  return std::abs(mass - initial.mass) / std::abs(initial.mass);
}

Real Invariants::energy_drift(const Invariants& initial) const {
  return std::abs(total_energy - initial.total_energy) /
         std::abs(initial.total_energy);
}

Real Invariants::enstrophy_drift(const Invariants& initial) const {
  return std::abs(potential_enstrophy - initial.potential_enstrophy) /
         std::abs(initial.potential_enstrophy);
}

Invariants compute_invariants(const mesh::VoronoiMesh& m,
                              const FieldStore& fields) {
  const auto h = fields.get(FieldId::H);
  const auto u = fields.get(FieldId::U);
  const auto b = fields.get(FieldId::Bottom);
  const Real g = constants::kGravity;

  Invariants inv;
  inv.h_min = h[0];
  inv.h_max = h[0];

  for (Index c = 0; c < m.num_cells; ++c) {
    inv.mass += m.area_cell[c] * h[c];
    inv.potential_energy += m.area_cell[c] * g * h[c] * (0.5 * h[c] + b[c]);
    inv.h_min = std::min(inv.h_min, h[c]);
    inv.h_max = std::max(inv.h_max, h[c]);
  }

  // Kinetic energy in the edge-based form consistent with the discrete ke:
  // sum over edges of 0.25*dc*dv*u^2*h_edge (each edge quad's energy).
  for (Index e = 0; e < m.num_edges; ++e) {
    const Real h_edge =
        0.5 * (h[m.cells_on_edge(e, 0)] + h[m.cells_on_edge(e, 1)]);
    inv.kinetic_energy += 0.5 * m.dc_edge[e] * m.dv_edge[e] * 0.5 * u[e] *
                          u[e] * h_edge;
  }
  inv.total_energy = inv.kinetic_energy + inv.potential_energy;

  // Potential enstrophy: q = (f + zeta)/h_v at vertices.
  for (Index v = 0; v < m.num_vertices; ++v) {
    Real circulation = 0;
    Real h_vertex = 0;
    for (int j = 0; j < mesh::VoronoiMesh::kVertexDegree; ++j) {
      const Index e = m.edges_on_vertex(v, j);
      circulation += m.edge_sign_on_vertex(v, j) * m.dc_edge[e] * u[e];
      h_vertex += m.kite_areas_on_vertex(v, j) * h[m.cells_on_vertex(v, j)];
    }
    const Real zeta = circulation / m.area_triangle[v];
    h_vertex /= m.area_triangle[v];
    MPAS_CHECK(h_vertex > 0);
    const Real q = (m.f_vertex[v] + zeta) / h_vertex;
    inv.potential_enstrophy += 0.5 * m.area_triangle[v] * h_vertex * q * q;
  }
  return inv;
}

StateHealth compute_state_health(const mesh::VoronoiMesh& m,
                                 const FieldStore& fields, Index num_cells,
                                 Index num_edges) {
  MPAS_CHECK(num_cells >= 1 && num_cells <= m.num_cells);
  MPAS_CHECK(num_edges >= 0 && num_edges <= m.num_edges);
  const auto h = fields.get(FieldId::H);
  const auto u = fields.get(FieldId::U);
  const auto b = fields.get(FieldId::Bottom);
  const Real g = constants::kGravity;

  StateHealth out;
  out.h_min = h[0];
  for (Index c = 0; c < num_cells; ++c) {
    out.finite = out.finite && std::isfinite(h[c]);
    out.mass += m.area_cell[c] * h[c];
    out.energy += m.area_cell[c] * g * h[c] * (0.5 * h[c] + b[c]);
    out.h_min = std::min(out.h_min, h[c]);
  }
  for (Index e = 0; e < num_edges; ++e) {
    out.finite = out.finite && std::isfinite(u[e]);
    const Real h_edge =
        0.5 * (h[m.cells_on_edge(e, 0)] + h[m.cells_on_edge(e, 1)]);
    out.energy +=
        0.5 * m.dc_edge[e] * m.dv_edge[e] * 0.5 * u[e] * u[e] * h_edge;
  }
  out.finite = out.finite && std::isfinite(out.mass) &&
               std::isfinite(out.energy);
  return out;
}

}  // namespace mpas::sw
