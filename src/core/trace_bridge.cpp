#include "core/trace_bridge.hpp"

namespace mpas::core {

namespace {

// Lane ids inside a modeled track, matching the simulator's timelines.
constexpr int kLaneHost = 0;
constexpr int kLaneAccel = 1;
constexpr int kLanePcie = 2;
constexpr int kLaneNetwork = 3;

int lane_of(const TraceEntry& entry) {
  switch (entry.kind) {
    case TraceEntry::Kind::Transfer: return kLanePcie;
    case TraceEntry::Kind::HaloComm: return kLaneNetwork;
    case TraceEntry::Kind::Compute: break;
  }
  return entry.side == DeviceSide::Accel ? kLaneAccel : kLaneHost;
}

}  // namespace

int record_modeled_trace(const DataflowGraph& graph, const SimResult& result,
                         obs::TraceRecorder& recorder,
                         const std::string& track_name, double time_scale) {
  const int track = recorder.allocate_track(track_name);
  recorder.set_lane_name(track, kLaneHost, "host (modeled)");
  recorder.set_lane_name(track, kLaneAccel, "accel (modeled)");
  recorder.set_lane_name(track, kLanePcie, "pcie (modeled)");
  recorder.set_lane_name(track, kLaneNetwork, "network (modeled)");

  for (const TraceEntry& entry : result.trace) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceEvent::Kind::Complete;
    ev.track = track;
    ev.lane = lane_of(entry);
    ev.ts_us = static_cast<double>(entry.start) * time_scale;
    ev.dur_us = static_cast<double>(entry.finish - entry.start) * time_scale;
    if (entry.kind == TraceEntry::Kind::Compute) {
      ev.name = graph.node(entry.node).label;
      ev.args = obs::trace_arg("node", static_cast<std::int64_t>(entry.node)) +
                "," + obs::trace_arg("side", to_string(entry.side));
    } else {
      ev.name = entry.label;
      ev.args = obs::trace_arg(
          "kind", entry.kind == TraceEntry::Kind::Transfer ? "transfer"
                                                           : "halo");
    }
    ev.args += ',';
    ev.args += obs::trace_arg(
        "modeled_s", static_cast<double>(entry.finish - entry.start));
    recorder.record(std::move(ev));
  }
  return track;
}

}  // namespace mpas::core
