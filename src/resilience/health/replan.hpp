// ReplanEngine: degraded-mode rescheduling. When the HealthMonitor changes
// an entity's state, the engine recomputes the pattern-level CPU/accel
// split from the calibrated machine-model costs of the *surviving* devices
// (a dead accelerator falls back to the single-device host schedule; a gray
// failure re-runs the splitter against a derated DeviceSpec), re-validates
// the plan with the PR-3 analysis verifier plus schedule-level structural
// checks, and reports the modeled makespan and its roofline lower bound so
// the driver can prove the degraded plan is still near-optimal before
// swapping it in at a step boundary.
#pragma once

#include <string>

#include "analysis/graph_check.hpp"
#include "core/schedule.hpp"

namespace mpas::resilience::health {

/// What the monitor knows about the devices when a replan fires.
struct DeviceAvailability {
  bool accel_alive = true;
  Real accel_slowdown = 1.0;  // >= 1: gray-failure derating for the split
  Real host_slowdown = 1.0;
};

struct ReplanResult {
  core::Schedule schedule;
  core::SimResult modeled;        // schedule_sim run of the new plan
  analysis::Report verification;  // graph checks + schedule structure checks
  Real modeled_optimum = 0;       // roofline lower bound, surviving devices
  bool accepted = false;          // verification clean -> safe to swap
  std::string note;               // one-line human summary
};

class ReplanEngine {
 public:
  /// `sizes`/`opts` describe the mesh and the *nameplate* platform; replan
  /// derates a copy per the availability it is handed.
  ReplanEngine(core::MeshSizes sizes, core::SimOptions opts);

  /// Build + validate + cost a plan for `graph` under `avail`.
  [[nodiscard]] ReplanResult replan(const core::DataflowGraph& graph,
                                    const DeviceAvailability& avail) const;

  /// Roofline lower bound on any schedule's makespan over the surviving
  /// devices: max(work bound with perfect device overlap, critical path at
  /// per-node best-device roofline times). No schedule can beat it; the
  /// 1.25x degraded-mode acceptance bound is measured against it.
  [[nodiscard]] Real roofline_optimum(const core::DataflowGraph& graph,
                                      const DeviceAvailability& avail) const;

  /// The CPU-only reference: modeled run of the single-device host schedule
  /// under the same (possibly host-derated) availability.
  [[nodiscard]] core::SimResult cpu_only_modeled(
      const core::DataflowGraph& graph,
      const DeviceAvailability& avail) const;

  /// SimOptions with the availability's deratings applied.
  [[nodiscard]] core::SimOptions degraded_options(
      const DeviceAvailability& avail) const;

  [[nodiscard]] const core::SimOptions& options() const { return opts_; }
  [[nodiscard]] const core::MeshSizes& sizes() const { return sizes_; }

 private:
  core::MeshSizes sizes_;
  core::SimOptions opts_;
};

}  // namespace mpas::resilience::health
