// Deficit weighted round-robin dispatch queue.
//
// Admitted sessions wait here until a worker frees up; pop order — not
// admission — is what keeps a burst-happy tenant from starving a polite
// one between admission decisions. Classic DWRR: tenants are visited in a
// fixed round-robin ring, each visit deposits quantum * weight into the
// tenant's deficit counter, and the tenant's oldest session dispatches
// when the deficit covers its modeled cost. Heavier sessions therefore
// wait for more visits; per-visit service converges to the weight ratio.
//
// NOT internally synchronized: the SessionManager owns the lock (the
// queue is always consulted together with accounting it must stay
// consistent with).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace mpas::service {

struct QueueEntry {
  std::uint64_t id = 0;
  std::string tenant;
  int priority = 0;
  Real cost = 0;       // modeled seconds (the DWRR service unit)
  bool borrowed = false;
  std::uint64_t seq = 0;
};

class FairQueue {
 public:
  /// Tenants default to weight 1 until declared.
  void set_weight(const std::string& tenant, Real weight);

  void push(QueueEntry entry);
  /// Next session per DWRR, or nullopt when empty.
  [[nodiscard]] std::optional<QueueEntry> pop();
  /// Evict a queued session (cancellation, load-shedding). False when the
  /// id is not queued (e.g. already dispatched).
  bool remove(std::uint64_t id);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size_of_tenant(const std::string& tenant) const;
  /// Every queued entry, in no particular order (admission shed scans).
  [[nodiscard]] std::vector<QueueEntry> snapshot() const;

 private:
  struct Lane {
    std::deque<QueueEntry> entries;
    Real weight = 1.0;
    Real deficit = 0;
  };

  std::map<std::string, Lane> lanes_;  // ring = map order (stable, fair)
  std::string cursor_;                 // tenant visited next
  bool cursor_charged_ = false;        // cursor lane got its quantum already
  std::size_t size_ = 0;
};

}  // namespace mpas::service
