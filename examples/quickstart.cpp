// Quickstart: the one-page tour of the public API.
//
//   1. Generate a quasi-uniform spherical Voronoi (SCVT-class) mesh.
//   2. Initialize a standard shallow-water test case (Williamson TC2,
//      steady geostrophic flow, which has an analytic solution).
//   3. Integrate it with the pattern-driven model.
//   4. Check error norms and conserved quantities.
//
// Run:  ./quickstart [level=4] [hours=24]
#include <cstdio>

#include "mesh/mesh_cache.hpp"
#include "sw/invariants.hpp"
#include "sw/model.hpp"
#include "sw/testcases.hpp"
#include "util/config.hpp"

using namespace mpas;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int level = static_cast<int>(cfg.get_int("level", 4));
  const Real hours = cfg.get_real("hours", 24.0);

  // 1. Mesh: subdivision level k gives 10*4^k + 2 Voronoi cells.
  const auto mesh = mesh::get_global_mesh(level);
  std::printf("mesh: %d cells / %d edges / %d vertices (~%.0f km spacing)\n",
              mesh->num_cells, mesh->num_edges, mesh->num_vertices,
              mesh->nominal_resolution_km());

  // 2. Test case and a CFL-safe RK4 step.
  const auto tc = sw::make_test_case(2);
  sw::SwParams params;
  params.dt = sw::suggested_time_step(*tc, *mesh, 0.5);
  std::printf("test case: %s, dt = %.1f s\n", tc->name().c_str(), params.dt);

  // 3. The pattern-driven model (single process; see parallel_sphere.cpp
  //    for the multi-rank version and hybrid_tuning.cpp for schedules).
  sw::SwModel model(*mesh, params);
  sw::apply_initial_conditions(*tc, *mesh, model.fields());
  model.initialize();

  const sw::Invariants before = compute_invariants(*mesh, model.fields());
  const int steps = static_cast<int>(hours * 3600.0 / params.dt) + 1;
  model.run(steps);
  const sw::Invariants after = compute_invariants(*mesh, model.fields());

  // 4. Validation: TC2 is steady, so the initial state is the exact
  //    solution at any time.
  std::vector<Real> h_exact(static_cast<std::size_t>(mesh->num_cells));
  for (Index c = 0; c < mesh->num_cells; ++c)
    h_exact[static_cast<std::size_t>(c)] =
        tc->thickness(mesh->lon_cell[c], mesh->lat_cell[c]);
  const sw::ErrorNorms err =
      sw::cell_error_norms(*mesh, model.fields().get(sw::FieldId::H), h_exact);

  std::printf("\nafter %d steps (%.1f h):\n", steps, hours);
  std::printf("  thickness error:  l1 %.3e  l2 %.3e  linf %.3e\n", err.l1,
              err.l2, err.linf);
  std::printf("  mass drift:       %.3e (conserved to rounding)\n",
              after.mass_drift(before));
  std::printf("  energy drift:     %.3e\n", after.energy_drift(before));
  std::printf("  enstrophy drift:  %.3e\n", after.enstrophy_drift(before));
  return 0;
}
