// Structured wide-event log: one JSONL line per service decision and
// session state change, sharing a fixed schema so CI scripts and humans
// query the service's behaviour the same way (examples/obs_query).
//
//   {"ts":<monotonic s>,"tenant":"gold","session":7,"kind":"admit",
//    "attrs":{...}}
//
// `ts` is the shared monotonic timeline every other observability layer
// stamps with (logger lines, Chrome-trace timestamps), so an event-log
// line, a log line, and a trace instant for the same decision line up.
// `attrs` carries the decision-specific payload as pre-rendered JSON
// members (obs::trace_arg renders them), nested under one key so attr
// names can never collide with the envelope schema.
//
// Zero-code-change capture, mirroring MPAS_TRACE/MPAS_METRICS: if the
// MPAS_EVENTS environment variable names a file, the global log opens it
// on first use and every instrumented layer appends. Each line is flushed
// as written — the log is a postmortem artifact and must survive a crash.
//
// Overhead discipline: enabled() is one relaxed atomic load; attr string
// formatting belongs behind it at every call site.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>

#include "util/annotations.hpp"
#include "util/lock_ranks.hpp"
#include "util/mutex.hpp"

namespace mpas::obs::telemetry {

/// One wide event. `ts_s < 0` means "stamp me at emit time".
struct WideEvent {
  double ts_s = -1;
  std::string tenant;          // may be empty for service-scope events
  std::uint64_t session = 0;   // 0 = not tied to one session
  std::string kind;
  std::string attrs;           // pre-rendered JSON members, may be empty
};

class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// The process-wide log the service layers emit into. Opens the file
  /// named by MPAS_EVENTS (if any) on the first call.
  static EventLog& global();

  /// Open (truncating) `path` and start accepting events. Replaces any
  /// previously open sink.
  void open(const std::string& path);
  /// Flush and stop accepting events.
  void close();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Append one event (no-op while disabled). Stamps `ts_s` with the
  /// shared monotonic clock when the caller left it negative; each line
  /// is flushed immediately.
  void emit(const WideEvent& event);

  /// Convenience overload rendering the envelope in place.
  void emit(const std::string& kind, const std::string& tenant,
            std::uint64_t session, const std::string& attrs = {});

  [[nodiscard]] std::string path() const;
  [[nodiscard]] std::uint64_t events_written() const;

 private:
  std::atomic<bool> enabled_{false};
  // Leaf-rank mutex that exists to serialize the JSONL sink; the one
  // blocking write under it (emit) is the log's entire purpose.
  mutable util::Mutex mutex_{"obs.event_log", util::lockrank::kEventLog};
  std::ofstream out_ MPAS_GUARDED_BY(mutex_);
  std::string path_ MPAS_GUARDED_BY(mutex_);
  std::uint64_t written_ MPAS_GUARDED_BY(mutex_) = 0;
};

/// Path named by the MPAS_EVENTS environment variable, if any.
std::optional<std::string> env_events_path();

/// Render one event as its JSONL line (exposed for tests).
std::string to_jsonl(const WideEvent& event);

}  // namespace mpas::obs::telemetry
