// Simulation-as-a-service request/result vocabulary.
//
// A SessionRequest names a complete shallow-water experiment (mesh level,
// Williamson test case, step count, output cadence) plus the service-level
// contract around it: which tenant pays for it, how important it is, how
// long (in modeled seconds — the deterministic clock every admission and
// deadline decision keys on) it may take, and whether the service may run
// it at reduced fidelity when overloaded. A SessionResult is the full
// post-mortem: terminal state, explicit reason, what fidelity actually
// ran, and the solution hash for bitwise-correctness audits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace mpas::service {

/// Terminal and in-flight states of a session. Rejected/Shed sessions
/// never ran; every other terminal state owns an explicit reason string.
enum class SessionState : int {
  Queued = 0,
  Running = 1,
  Completed = 2,
  Rejected = 3,   // refused at admission (with reason)
  Shed = 4,       // admitted, then evicted from the queue by load-shedding
  Cancelled = 5,  // cooperative cancel honored at a step boundary
  TimedOut = 6,   // modeled deadline exceeded at a step boundary
  Failed = 7,     // threw; torn down cleanly, co-residents undisturbed
};

const char* to_string(SessionState state);
/// True for states a session can never leave.
bool is_terminal(SessionState state);

/// Machine-readable companion to SessionResult::reason. The strings stay
/// the human-facing explanation; the code is what the event log and
/// obs_query aggregate on, so no consumer ever parses reason prose.
enum class ReasonCode : int {
  None = 0,
  // Admission verdicts (which rung of the ladder admitted the session).
  AdmitGuarantee = 1,      // fit within the tenant's guaranteed share
  AdmitBorrowed = 2,       // borrowed spare capacity beyond the guarantee
  AdmitReclaimed = 3,      // admitted after reclaiming borrowed slots
  AdmitAfterShed = 4,      // admitted after shedding lower-priority work
  AdmitDegraded = 5,       // admitted at reduced fidelity
  // Refusals.
  RejectBackpressure = 6,  // tenant queue bound hit before pricing
  RejectOverload = 7,      // nothing left to reclaim/shed/degrade
  RejectShutdown = 8,      // service no longer accepting work
  // Evictions of queued sessions.
  ShedReclaimed = 9,       // borrowed slot reclaimed by a guarantee claim
  ShedPriority = 10,       // displaced by a higher-priority submission
  // Terminal fates of sessions that ran (or were asked to stop).
  DeadlineExceeded = 11,   // modeled deadline hit at a step boundary
  TransientExhausted = 12, // retries/backoff used up the attempt budget
  SessionFault = 13,       // threw a non-transient exception
  CancelledByUser = 14,    // cooperative cancel honored
  ServiceShutdown = 15,    // torn down by shutdown()
  Completed = 16,          // ran to the last step
};

const char* to_string(ReasonCode code);

/// Deterministic fault plan for one session (soak campaigns and tests).
struct ChaosSpec {
  /// Throw a TransientError on the first N run attempts — exercises the
  /// manager's exponential-backoff retry without burning real work.
  int fail_first_attempts = 0;
  /// Report a hard accelerator fault to the session's HealthMonitor after
  /// this step (-1 = never): the session quarantines its device and
  /// replans mid-run while co-resident sessions keep their hybrid plans.
  std::int64_t quarantine_accel_at_step = -1;
};

struct SessionRequest {
  std::string tenant = "default";
  int mesh_level = 3;   // icosahedral subdivision level
  int test_case = 2;    // Williamson test case number
  int steps = 10;
  int output_every = 1;  // write (modeled) output every N steps; 0 = never
  /// Larger = more important. Load-shedding evicts the lowest priority
  /// first; ties broken against the youngest.
  int priority = 1;
  /// Modeled-seconds budget for the whole run, retries and backoff
  /// included (0 = no deadline). Checked at step boundaries only — steps
  /// are never aborted midway.
  Real deadline_modeled_s = 0;
  /// Permit the degraded-fidelity rung of the admission ladder (one mesh
  /// level coarser, output cadence halved) instead of rejection.
  bool allow_degraded = true;
  int threads = 0;  // worker threads for the session's numerics pool
  ChaosSpec chaos;
};

struct SessionResult {
  std::uint64_t id = 0;
  std::string tenant;
  SessionState state = SessionState::Queued;
  /// Why the session ended the way it did (admission verdicts, shed and
  /// degradation explanations, exception text) — never empty for
  /// Rejected/Shed/Cancelled/TimedOut/Failed.
  std::string reason;
  /// Machine-readable reason — what reason says, as an enum.
  ReasonCode reason_code = ReasonCode::None;
  bool degraded = false;
  int mesh_level_used = -1;
  int test_case_used = 0;
  int output_every_used = 0;
  int steps_done = 0;
  int replans = 0;   // healing replans during the run
  int attempts = 0;  // 1 = first try succeeded
  int outputs_written = 0;
  /// Modeled seconds actually consumed (steps + outputs + retry backoff).
  Real modeled_seconds = 0;
  /// Modeled seconds the admission controller priced and reserved.
  Real admitted_cost = 0;
  /// FNV-1a over the final H and U fields — equal to the reference hash
  /// for the same (level, case, steps) iff the run was bitwise correct.
  std::uint64_t state_hash = 0;
  /// Modeled seconds of each completed step (the soak's EWMA-band check
  /// that co-resident sessions were undisturbed by a neighbor's fault).
  std::vector<Real> step_modeled_seconds;
  /// Worst measured-vs-modeled drift ratio the session's ModelDriftMonitor
  /// saw on any channel (>= 1; 1 = perfectly on model), and how many drift
  /// alarms it raised. Alarms on a clean run are a model-fidelity bug.
  Real worst_drift_ratio = 1.0;
  std::uint64_t drift_alarms = 0;
  /// Crash-recovery provenance: this session was re-admitted by the
  /// RecoveryManager and resumed from a durable checkpoint.
  bool recovered = false;
  /// Step the durable restore landed on (-1 = started from step 0).
  std::int64_t resumed_from_step = -1;
  /// Session id (and journal epoch) this run continued.
  std::uint64_t recovered_from = 0;
  int recovered_from_epoch = 0;
  /// A recovered session whose final state hash does NOT match the
  /// uninterrupted reference trajectory. Always false for healthy
  /// recoveries; obs_query mode=recovery and CI fail on any true.
  bool diverged = false;
};

}  // namespace mpas::service
