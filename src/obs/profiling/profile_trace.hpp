// Trace-side rendering of a measured profile: one extra track in the
// Chrome-trace export with the measured per-pattern cost, the machine
// model's prediction, and their divergence on adjacent lanes — so a single
// Perfetto file answers "where does the model disagree with reality".
//
// The comparison is *share-normalized* (each side divided by its own
// total) because predictions price Table-II hardware while measurements
// come from the build machine: absolute ratios carry the machine-speed
// difference, shares isolate the operation-mix disagreement — the same
// philosophy as StepProfiler::shares().
#pragma once

#include <string>
#include <vector>

#include "obs/profiling/profile_store.hpp"
#include "obs/trace.hpp"

namespace mpas::obs::profiling {

/// Share-normalized measured-vs-predicted comparison for one entry. Both
/// shares are taken over the predicted entries only (the same universe),
/// so unpredicted slots — typically nested scopes double-counting the same
/// wall time — cannot skew the comparison.
struct ShareDrift {
  ProfileKey key;
  double measured_share = 0;   // entry mean / sum of predicted entries' means
  double predicted_share = 0;  // entry prediction / sum of predictions
  /// measured_share / predicted_share (0 when the entry lacks either side).
  double ratio = 0;
  /// Symmetric divergence max(ratio, 1/ratio) >= 1; 1 = perfect agreement.
  [[nodiscard]] double divergence() const {
    return ratio > 0 ? (ratio >= 1 ? ratio : 1.0 / ratio) : 1.0;
  }
};

/// Per-entry share drift over every entry with calls > 0. Entries without
/// predictions appear with every field zero (nothing to compare).
std::vector<ShareDrift> share_drift(const Profile& profile);

/// Worst symmetric share divergence across the profile (1 when no entry
/// carries a prediction — nothing to diverge from).
double worst_share_drift(const Profile& profile);

/// Record the measured-vs-modeled overlay as a fresh track on `recorder`:
/// lane 0 the measured per-call mean, lane 1 the predicted per-call cost,
/// lane 2 a drift-ratio counter series (share-normalized). Entries are
/// laid out sequentially; returns the allocated track id.
int record_profile_overlay(const Profile& profile, TraceRecorder& recorder,
                           const std::string& track_name);

}  // namespace mpas::obs::profiling
