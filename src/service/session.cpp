#include "service/session.hpp"

#include <map>
#include <span>
#include <sstream>
#include <tuple>

#include "mesh/mesh_cache.hpp"
#include "obs/telemetry/event_log.hpp"
#include "obs/trace.hpp"
#include "service/durable_session.hpp"
#include "service/recovery.hpp"
#include "sw/model.hpp"
#include "sw/state_codec.hpp"
#include "sw/testcases.hpp"
#include "util/error.hpp"
#include "util/lock_ranks.hpp"
#include "util/logging.hpp"
#include "util/mutex.hpp"

namespace mpas::service {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_mix(std::uint64_t& hash, std::span<const Real> values) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(values.data());
  const std::size_t n = values.size() * sizeof(Real);
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

sw::SwParams params_for(const sw::TestCase& tc,
                        const mesh::VoronoiMesh& mesh) {
  sw::SwParams params;
  params.dt = sw::suggested_time_step(tc, mesh, 0.4);
  return params;
}

}  // namespace

std::uint64_t state_hash(const sw::FieldStore& fields) {
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, fields.get(sw::FieldId::H));
  fnv_mix(hash, fields.get(sw::FieldId::U));
  return hash;
}

std::uint64_t reference_hash(int mesh_level, int test_case, int steps) {
  using Key = std::tuple<int, int, int>;
  static util::Mutex mutex{"service.session_reference",
                           util::lockrank::kSessionReference};
  static std::map<Key, std::uint64_t> memo;

  const Key key{mesh_level, test_case, steps};
  {
    const util::LockGuard lock(mutex);
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
  }
  // Reference outside the lock: a level-6 run must not serialize lookups
  // for other keys. A racing duplicate computes the same value.
  const auto mesh = mesh::get_global_mesh(mesh_level);
  const auto tc = sw::make_test_case(test_case);
  sw::SwModel ref(*mesh, params_for(*tc, *mesh));
  sw::apply_initial_conditions(*tc, *mesh, ref.fields());
  ref.initialize();
  ref.run(steps);
  const std::uint64_t hash = state_hash(ref.fields());

  const util::LockGuard lock(mutex);
  memo.emplace(key, hash);
  return hash;
}

void run_session(const SessionRunContext& ctx, SessionResult& result) {
  MPAS_CHECK(ctx.request != nullptr && ctx.mesh != nullptr);
  const SessionRequest& req = *ctx.request;
  namespace telemetry = obs::telemetry;
  telemetry::FlightRecorder* flight = ctx.flight;

  if (result.attempts <= req.chaos.fail_first_attempts) {
    std::ostringstream os;
    os << "chaos: injected transient launch fault (attempt "
       << result.attempts << " of " << req.chaos.fail_first_attempts
       << " doomed)";
    throw TransientError(os.str());
  }

  const auto tc = sw::make_test_case(req.test_case);
  resilience::health::SelfHealingHybrid::Options hopts;
  hopts.sim = ctx.sim;
  hopts.threads = req.threads;
  hopts.metric_scope = "service.session" + std::to_string(ctx.id) + ".";
  resilience::health::SelfHealingHybrid sut(*ctx.mesh,
                                            params_for(*tc, *ctx.mesh), hopts);
  if (flight != nullptr) {
    // Black-box feed: every health transition this session's monitor sees
    // lands in the ring (and the event log) as it happens. The listener
    // runs *after* the monitor releases its mutex, so recording here never
    // nests the recorder's lock under the monitor's.
    const std::uint64_t id = ctx.id;
    const std::string tenant = req.tenant;
    sut.monitor().add_transition_listener(
        [flight, id, tenant](const resilience::health::Transition& t) {
          flight->record(telemetry::FlightKind::HealthTransition,
                         static_cast<long>(t.step),
                         t.entity + ": " + to_string(t.from) + " -> " +
                             to_string(t.to) + " (" + t.reason + ")");
          auto& events = telemetry::EventLog::global();
          if (events.enabled())
            events.emit("health", tenant, id,
                        obs::trace_arg("entity", t.entity) + "," +
                            obs::trace_arg("from",
                                           std::string(to_string(t.from))) +
                            "," +
                            obs::trace_arg("to",
                                           std::string(to_string(t.to))) +
                            "," + obs::trace_arg("step", t.step));
        });
  }
  if (flight != nullptr) {
    // Same black-box treatment for model-drift alarms: the earliest gray-
    // failure breadcrumb a postmortem has (the listener runs after the
    // drift monitor released its mutex — same re-entrancy contract as the
    // health transition listener above).
    const std::uint64_t id = ctx.id;
    const std::string tenant = req.tenant;
    sut.drift().add_alarm_listener(
        [flight, id, tenant](const obs::profiling::DriftAlarm& a) {
          std::ostringstream os;
          os << a.channel << ": measured/modeled drifted to " << a.ratio
             << "x (baseline " << a.baseline << ")";
          flight->record(telemetry::FlightKind::DriftAlarm,
                         static_cast<long>(a.step), os.str(),
                         static_cast<double>(a.ratio),
                         static_cast<double>(a.baseline));
          auto& events = telemetry::EventLog::global();
          if (events.enabled())
            events.emit("drift", tenant, id,
                        obs::trace_arg("channel", a.channel) + "," +
                            obs::trace_arg("ratio", a.ratio) + "," +
                            obs::trace_arg("step", a.step));
        });
  }
  sw::apply_initial_conditions(*tc, *ctx.mesh, sut.model().fields());
  int start_step = 0;
  if (ctx.resume != nullptr) {
    // Crash recovery: overwrite the prognostic fields with the durable
    // snapshot *before* initialize(), which recomputes every diagnostic
    // deterministically from H/U — the same restore protocol the restart
    // test (tests/test_output.cpp) proves continues bit-for-bit.
    result.recovered = true;
    result.recovered_from = ctx.resume->from_id;
    result.recovered_from_epoch = ctx.resume->from_epoch;
    if (ctx.resume->step >= 0) {
      sw::restore_prognostic(ctx.resume->image, sut.model().fields());
      const std::uint64_t restored = state_hash(sut.model().fields());
      MPAS_CHECK_MSG(restored == ctx.resume->expect_hash,
                     "durable restore hash mismatch for session "
                         << ctx.id << ": restored " << restored
                         << ", checkpoint recorded " << ctx.resume->expect_hash);
      start_step = static_cast<int>(ctx.resume->step);
      result.resumed_from_step = ctx.resume->step;
    }
    if (flight != nullptr) {
      std::ostringstream os;
      os << "resumed from "
         << (ctx.resume->step >= 0 ? "durable step " +
                                         std::to_string(ctx.resume->step)
                                   : std::string("step 0 (no checkpoint)"))
         << " of session " << ctx.resume->from_id << " (epoch "
         << ctx.resume->from_epoch << ")";
      flight->record(telemetry::FlightKind::Recovery,
                     static_cast<long>(start_step), os.str(),
                     static_cast<double>(ctx.resume->generation));
    }
    MPAS_TRACE_INSTANT_ARGS(
        "durable:resume",
        obs::trace_arg("id", static_cast<std::int64_t>(ctx.id)) + "," +
            obs::trace_arg("from_step",
                           static_cast<std::int64_t>(start_step)));
  }
  sut.initialize();

  // Per-session trace track: concurrent sessions writing one MPAS_TRACE
  // file must stay distinguishable, so each session owns a named track
  // and records its step timeline there.
  auto& tracer = obs::TraceRecorder::global();
  int track = -1;
  if (tracer.enabled()) {
    std::ostringstream os;
    os << "session " << ctx.id << " [" << req.tenant << "]";
    track = tracer.allocate_track(os.str());
    tracer.set_lane_name(track, 0, "steps");
  }

  const std::int64_t bytes = static_cast<std::int64_t>(sizeof(Real)) *
                             (ctx.mesh->num_cells + ctx.mesh->num_edges);
  const Real output_seconds = ctx.sim.platform.link.time(bytes);

  Real spent = ctx.modeled_seconds_spent;
  result.steps_done = 0;
  result.outputs_written = 0;
  result.step_modeled_seconds.clear();

  // Step-time EWMA for excursion records: seeded after a short warmup so
  // the first steps (cold caches, initial replans) don't pollute the band.
  constexpr int kEwmaWarmupSteps = 3;
  constexpr Real kEwmaAlpha = 0.3;
  constexpr Real kExcursionLow = 0.8;
  constexpr Real kExcursionHigh = 1.2;
  Real ewma = 0;
  int ewma_samples = 0;
  int last_replans = sut.replans();

  for (int s = start_step; s < req.steps; ++s) {
    // Step boundary: the only place cancellation, deadlines, and injected
    // device faults are honored — a step in flight always completes.
    if (ctx.cancel != nullptr &&
        ctx.cancel->load(std::memory_order_acquire)) {
      result.state = SessionState::Cancelled;
      std::ostringstream os;
      os << "cancelled at step boundary " << s << " of " << req.steps;
      result.reason = os.str();
      result.reason_code = ReasonCode::CancelledByUser;
      result.modeled_seconds = spent;
      if (flight != nullptr)
        flight->record(telemetry::FlightKind::Cancel, s, result.reason);
      return;
    }
    if (req.deadline_modeled_s > 0 &&
        spent + sut.modeled_step_seconds() > req.deadline_modeled_s) {
      result.state = SessionState::TimedOut;
      std::ostringstream os;
      os << "deadline of " << req.deadline_modeled_s << " modeled s "
         << (s == 0 ? "exhausted before the first step (retry backoff)"
                    : "would be exceeded by the next step")
         << " after " << s << " of " << req.steps << " steps";
      result.reason = os.str();
      result.reason_code = ReasonCode::DeadlineExceeded;
      result.modeled_seconds = spent;
      result.replans = sut.replans();
      result.worst_drift_ratio = sut.drift().worst_ratio();
      result.drift_alarms = sut.drift().alarms();
      if (flight != nullptr)
        flight->record(telemetry::FlightKind::DeadlineCheck, s,
                       result.reason, spent + sut.modeled_step_seconds(),
                       req.deadline_modeled_s);
      return;
    }
    if (s == req.chaos.quarantine_accel_at_step)
      sut.monitor().observe_failure("accel", s,
                                    "chaos: injected device fault");

    const double step_start_us = tracer.now_us();
    sut.step();
    const Real step_seconds = sut.modeled_step_seconds();
    if (track >= 0) {
      obs::TraceEvent ev;
      ev.kind = obs::TraceEvent::Kind::Complete;
      ev.name = "step";
      ev.args = obs::trace_arg("step", static_cast<std::int64_t>(s)) + "," +
                obs::trace_arg("modeled_s", step_seconds);
      ev.ts_us = step_start_us;
      ev.dur_us = tracer.now_us() - step_start_us;
      ev.track = track;
      ev.lane = 0;
      tracer.record(std::move(ev));
    }
    spent += step_seconds;
    result.step_modeled_seconds.push_back(step_seconds);
    result.steps_done = s + 1;

    const int replans = sut.replans();
    if (replans != last_replans) {
      if (flight != nullptr)
        flight->record(telemetry::FlightKind::Replan, s,
                       "schedule swap after health transition",
                       static_cast<double>(replans));
      auto& events = telemetry::EventLog::global();
      if (events.enabled())
        events.emit("replan", req.tenant, ctx.id,
                    obs::trace_arg("step", static_cast<std::int64_t>(s)) +
                        "," +
                        obs::trace_arg("replans",
                                       static_cast<std::int64_t>(replans)));
      last_replans = replans;
      // The plan changed: the old EWMA band describes the old schedule.
      ewma = 0;
      ewma_samples = 0;
    }

    // EWMA excursion: a step that left the learned band is exactly the
    // breadcrumb a postmortem needs, even when the run still completed.
    if (ewma_samples >= kEwmaWarmupSteps) {
      const Real ratio = step_seconds / ewma;
      if ((ratio < kExcursionLow || ratio > kExcursionHigh) &&
          flight != nullptr) {
        flight->record(telemetry::FlightKind::StepExcursion, s,
                       "step time left the EWMA band", step_seconds, ewma);
      }
    }
    ewma = ewma_samples == 0 ? step_seconds
                             : (1 - kEwmaAlpha) * ewma +
                                   kEwmaAlpha * step_seconds;
    ewma_samples += 1;

    if (req.output_every > 0 && (s + 1) % req.output_every == 0) {
      result.outputs_written += 1;
      spent += output_seconds;
    }

    // Durability hook: stage a prognostic snapshot when the cadence hits.
    // The final step is excluded — the terminal journal record supersedes
    // any checkpoint there. Disabled path: this one branch.
    if (ctx.durable != nullptr && s + 1 < req.steps)
      ctx.durable->on_step(s + 1, sut.model().fields());
  }

  result.state = SessionState::Completed;
  result.reason_code = ReasonCode::Completed;
  result.modeled_seconds = spent;
  result.replans = sut.replans();
  result.worst_drift_ratio = sut.drift().worst_ratio();
  result.drift_alarms = sut.drift().alarms();
  result.state_hash = state_hash(sut.model().fields());

  if (result.recovered) {
    // The recovery contract: a resumed trajectory must land bitwise on the
    // uninterrupted run. The reference is memoized, so repeated audits of
    // one (level, case, steps) key cost one extra run process-wide.
    result.diverged = result.state_hash !=
                      reference_hash(req.mesh_level, req.test_case, req.steps);
    if (flight != nullptr)
      flight->record(telemetry::FlightKind::Recovery, req.steps,
                     result.diverged
                         ? "recovered trajectory DIVERGED from reference"
                         : "recovered trajectory bitwise-identical to "
                           "reference");
    if (result.diverged)
      MPAS_LOG_ERROR << "session " << ctx.id
                     << " recovered but diverged from the reference "
                        "trajectory (hash "
                     << result.state_hash << ")";
  }
}

}  // namespace mpas::service
