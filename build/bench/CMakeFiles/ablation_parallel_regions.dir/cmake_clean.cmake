file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallel_regions.dir/ablation_parallel_regions.cpp.o"
  "CMakeFiles/ablation_parallel_regions.dir/ablation_parallel_regions.cpp.o.d"
  "ablation_parallel_regions"
  "ablation_parallel_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
