// The annotated mutex every lock in src/ goes through.
//
// util::Mutex wraps std::mutex three ways at once:
//
//   contract   It is a Clang Thread Safety CAPABILITY (util/annotations.hpp):
//              members it protects carry MPAS_GUARDED_BY(mutex_) and the
//              `thread-safety` CI job turns a missed lock into a compile
//              error under -Wthread-safety -Werror.
//   identity   Every mutex carries a stable name and a lock-order rank
//              (util/lock_ranks.hpp), so a runtime report can say
//              "service.session_manager was taken while exec.thread_pool
//              was held" instead of printing two addresses.
//   hooks      lock()/unlock() call into an installable hook table when it
//              is armed — the LockOrderRegistry (src/analysis/lock_order.hpp,
//              enabled via MPAS_LOCK_CHECK=1) records per-thread acquisition
//              chains through it. Dark cost is one relaxed atomic load and a
//              predicted-untaken branch per operation — parity with a raw
//              std::mutex lock/unlock pair (typically <1%, asserted <5% by
//              tests/test_lockorder.cpp; bench/lock_contention.cpp tracks
//              the measured series).
//
// Raw std::mutex / std::lock_guard / std::condition_variable are forbidden
// outside src/util/ by tools/lint_concurrency.py; use Mutex, LockGuard,
// UniqueLock, and ConditionVariable from this header instead.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/annotations.hpp"

namespace mpas::util {

class Mutex;

/// Hook table the lock-order detector installs. Both pointers must be
/// non-null while armed; callbacks run on the locking thread and must not
/// acquire any util::Mutex (the registry guards itself with a raw
/// std::mutex and a per-thread reentrancy flag).
struct MutexHooks {
  void (*on_lock)(const Mutex&) = nullptr;
  void (*on_unlock)(const Mutex&) = nullptr;
};

namespace detail {

/// Armed flag, read on every lock/unlock. Separate from the table so the
/// dark path costs exactly one relaxed load.
extern std::atomic<bool> g_mutex_hooks_armed;

/// Out-of-line dispatch (keeps the inline lock() body branch-and-call).
void mutex_hook_lock(const Mutex& m);
void mutex_hook_unlock(const Mutex& m);

std::uint64_t next_mutex_id();

}  // namespace detail

/// Install the hook table and arm it. One observer at a time; installing
/// over an armed table replaces it.
void set_mutex_hooks(const MutexHooks& hooks);
/// Disarm. Callers must quiesce their own threads first: a thread already
/// past the armed check may still deliver one in-flight callback.
void clear_mutex_hooks();
[[nodiscard]] bool mutex_hooks_armed();

class MPAS_CAPABILITY("mutex") Mutex {
 public:
  /// `name` must outlive the mutex (string literals only); `rank` comes
  /// from util/lock_ranks.hpp (0 = unranked: cycle detection still
  /// applies, rank checking does not).
  explicit Mutex(const char* name = "", int rank = 0)
      : name_(name), rank_(rank), id_(detail::next_mutex_id()) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MPAS_ACQUIRE() {
    // Hook BEFORE the acquisition (acquire-attempt semantics). Two reasons:
    // the registry records the edge even when the acquisition is about to
    // block (a hung process still has the cycle in its report), and the
    // hook's own publishing (metrics counters, trace instants) locks the
    // observability mutexes — dispatching after m_.lock() would self-
    // deadlock the first time a new edge is discovered while acquiring one
    // of those very mutexes.
    if (detail::g_mutex_hooks_armed.load(std::memory_order_acquire))
        [[unlikely]]
      detail::mutex_hook_lock(*this);
    m_.lock();
  }

  void unlock() MPAS_RELEASE() {
    if (detail::g_mutex_hooks_armed.load(std::memory_order_acquire))
        [[unlikely]]
      detail::mutex_hook_unlock(*this);
    m_.unlock();
  }

  bool try_lock() MPAS_TRY_ACQUIRE(true) {
    // Dispatch after success here (a failed attempt is not an edge). This
    // means the observability sinks themselves must never be try_lock'ed
    // — the hook publishes through them while m_ is already held.
    const bool ok = m_.try_lock();
    if (ok && detail::g_mutex_hooks_armed.load(std::memory_order_acquire))
        [[unlikely]]
      detail::mutex_hook_lock(*this);
    return ok;
  }

  [[nodiscard]] const char* name() const { return name_; }
  [[nodiscard]] int rank() const { return rank_; }
  /// Process-unique, assigned at construction — the lock-order graph key.
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  std::mutex m_;
  const char* name_;
  int rank_;
  std::uint64_t id_;
};

/// Drop-in for std::lock_guard<std::mutex> over util::Mutex.
class MPAS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) MPAS_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() MPAS_RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Drop-in for std::unique_lock<std::mutex> over util::Mutex — the handle
/// ConditionVariable waits through. Supports manual unlock()/lock() so a
/// scope can shed the capability around a blocking call.
class MPAS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) MPAS_ACQUIRE(m) : m_(&m), owns_(true) {
    m_->lock();
  }
  ~UniqueLock() MPAS_RELEASE() {
    if (owns_) m_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() MPAS_ACQUIRE() {
    m_->lock();
    owns_ = true;
  }
  void unlock() MPAS_RELEASE() {
    owns_ = false;
    m_->unlock();
  }
  [[nodiscard]] bool owns_lock() const { return owns_; }
  [[nodiscard]] Mutex* mutex() const { return m_; }

 private:
  Mutex* m_;
  bool owns_;
};

/// Condition variable that waits on util::Mutex (through a UniqueLock), so
/// the lock-order registry sees the capability released while the thread
/// sleeps and reacquired before wait() returns.
///
/// The thread-safety analysis cannot see through the type-erased
/// release/reacquire inside std::condition_variable_any, so wait sites keep
/// the canonical annotated shape — the predicate stays inline in the
/// locked function, never in a lambda the analysis would treat as
/// lock-free:
///
///   util::UniqueLock lock(mutex_);
///   while (!ready_) cv_.wait(lock);
class ConditionVariable {
 public:
  ConditionVariable() = default;
  ConditionVariable(const ConditionVariable&) = delete;
  ConditionVariable& operator=(const ConditionVariable&) = delete;

  /// Atomically release `lock`, sleep, reacquire. Spurious wakeups apply:
  /// always wait in a while loop. The analysis models the capability as
  /// held across the call (it is, at every observable point).
  void wait(UniqueLock& lock) MPAS_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(*lock.mutex());
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      UniqueLock& lock, const std::chrono::time_point<Clock, Duration>& tp)
      MPAS_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(*lock.mutex(), tp);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& d)
      MPAS_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(*lock.mutex(), d);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mpas::util
