#include "util/timer.hpp"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <sstream>

namespace mpas {

namespace {

std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

double monotonic_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_epoch())
      .count();
}

int thread_short_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TimingStats::accumulate_locked(Entry& e, double seconds) {
  if (e.count == 0) {
    e.min = seconds;
    e.max = seconds;
  } else {
    e.min = std::min(e.min, seconds);
    e.max = std::max(e.max, seconds);
  }
  e.count += 1;
  e.total += seconds;
}

TimingStats::SectionHandle TimingStats::handle(const std::string& section) {
  std::lock_guard<std::mutex> lock(mutex_);
  // std::map nodes are address-stable, so the handle survives later inserts.
  return SectionHandle(&entries_[section]);
}

void TimingStats::add(const std::string& section, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  accumulate_locked(entries_[section], seconds);
}

void TimingStats::add(SectionHandle handle, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  accumulate_locked(*handle.entry_, seconds);
}

TimingStats::Entry TimingStats::get(const std::string& section) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(section);
  return it == entries_.end() ? Entry{} : it->second;
}

bool TimingStats::contains(const std::string& section) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(section) != 0;
}

std::map<std::string, TimingStats::Entry> TimingStats::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

void TimingStats::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Handles resolved before clear() stay valid: entries are zeroed in
  // place, never erased.
  for (auto& [name, e] : entries_) e = Entry{};
}

std::string TimingStats::report() const {
  const auto snapshot = entries();
  std::vector<std::pair<std::string, Entry>> rows(snapshot.begin(),
                                                  snapshot.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total > b.second.total;
  });
  std::ostringstream os;
  os << std::left << std::setw(36) << "section" << std::right << std::setw(10)
     << "count" << std::setw(14) << "total(s)" << std::setw(14) << "mean(s)"
     << std::setw(14) << "max(s)" << "\n";
  for (const auto& [name, e] : rows) {
    os << std::left << std::setw(36) << name << std::right << std::setw(10)
       << e.count << std::setw(14) << std::scientific << std::setprecision(3)
       << e.total << std::setw(14) << e.mean() << std::setw(14) << e.max
       << "\n";
  }
  return os.str();
}

}  // namespace mpas
