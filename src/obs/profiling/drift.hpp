// ModelDriftMonitor: online comparison of measured step times against the
// machine model's predictions, per named channel ("host", "accel",
// "step.wall", ...). Raises an alarm the moment measurement and model
// diverge — the gray-failure evidence HealthMonitor folds in before hard
// faults show, and the trigger for recalibration (ROADMAP item 1).
//
// Drift math (one-sided: only *slowdowns* relative to the model alarm):
//   ratio      r_t  = measured / predicted
//   baseline   B    = mean of the first `warmup` ratios, then frozen — so
//                     a constant machine-speed offset (the build machine
//                     is not Table-II hardware) never reads as drift;
//   deviation  x_t  = clamp(log(r_t / B), +-clamp_log)
//   Page-Hinkley m_t = m_{t-1} + (x_t - delta),  M_t = min(M_t, m_t)
//   alarm when  m_t - M_t > lambda  AND  r_t > ratio_threshold * B for
//   `confirm` consecutive observations — the conjunction kills single-
//   spike false positives while a sustained 2x slowdown still alarms on
//   its second slow observation (strictly before the health monitor's
//   suspect_after + quarantine_after ladder can quarantine).
//
// After an alarm the channel is `drifting` until an observation falls
// back under the threshold; the Page-Hinkley accumulator restarts so a
// second sustained shift re-alarms. Every observation publishes
// obs.profile.* metrics; alarms additionally emit a drift:alarm trace
// instant, a wide event through the event log, and the registered alarm
// listeners (delivered after the monitor's mutex is released — listeners
// may call lower-ranked locks such as HealthMonitor's).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/lock_ranks.hpp"
#include "util/mutex.hpp"
#include "util/types.hpp"

namespace mpas::obs::profiling {

struct DriftPolicy {
  Real alpha = 0.4;            // EWMA weight of the newest ratio
  int warmup = 8;              // observations to learn the frozen baseline
  Real ratio_threshold = 1.5;  // r > threshold * baseline counts as "over"
  Real ph_delta = 0.05;        // Page-Hinkley drift allowance per step
  Real ph_lambda = 1.0;        // Page-Hinkley alarm threshold
  int confirm = 2;             // consecutive "over" observations to alarm
  Real clamp_log = 1.5;        // per-observation |log deviation| clamp
  bool enabled = true;

  /// Parse the MPAS_DRIFT grammar: "off" disables, otherwise a comma list
  /// of key=value pairs (ratio=, lambda=, delta=, alpha=, warmup=,
  /// confirm=, clamp=). Unknown keys and malformed values warn and keep
  /// the default — a typo degrades to stock behaviour, never a crash.
  static DriftPolicy parse(const std::string& text);
  /// parse(MPAS_DRIFT) when set, defaults otherwise.
  static DriftPolicy from_env();
  [[nodiscard]] std::string to_string() const;
};

/// One raised alarm (also appended to the queryable alarm log).
struct DriftAlarm {
  std::string channel;
  std::int64_t step = 0;
  Real ratio = 0;     // measured/predicted at the alarm
  Real baseline = 0;  // frozen warmup baseline
  Real score = 0;     // Page-Hinkley m - M at the alarm
};

class ModelDriftMonitor {
 public:
  explicit ModelDriftMonitor(DriftPolicy policy = {});

  /// Prefix for the obs.profile.* metrics this monitor publishes (the
  /// HealthMonitor metric_scope convention).
  void set_metric_scope(std::string scope);

  /// Observe one (prediction, measurement) pair. Thread-safe; alarms are
  /// delivered to listeners after the internal mutex is released.
  void observe(const std::string& channel, std::int64_t step, Real predicted_s,
               Real measured_s);

  using AlarmListener = std::function<void(const DriftAlarm&)>;
  void add_alarm_listener(AlarmListener listener);

  /// Forget a channel's baseline and Page-Hinkley state (plan swap: the
  /// predicted work just changed shape). Streak/alarm counters survive.
  void reset(const std::string& channel);
  void reset_all();

  // ---- queries ----
  /// EWMA of the channel's measured/predicted ratio (1 when unobserved).
  [[nodiscard]] Real ratio(const std::string& channel) const;
  /// Baseline-relative EWMA ratio (the actual drift estimate; 1 = on
  /// model). Meaningful once warmup completed.
  [[nodiscard]] Real drift(const std::string& channel) const;
  /// True while the channel is past an un-cleared alarm.
  [[nodiscard]] bool drifting(const std::string& channel) const;
  /// Worst baseline-relative ratio seen on any channel since start (>= 1).
  [[nodiscard]] Real worst_ratio() const;
  /// Total alarms raised (atomic; cheap).
  [[nodiscard]] std::uint64_t alarms() const {
    return alarms_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::vector<DriftAlarm> alarm_log() const;
  [[nodiscard]] const DriftPolicy& policy() const { return policy_; }

 private:
  struct Channel {
    int observations = 0;
    Real baseline_sum = 0;
    Real baseline = 0;       // frozen after `warmup` observations
    bool baseline_set = false;
    Real ewma_ratio = 1.0;
    Real ph_m = 0;
    Real ph_min = 0;
    int over_streak = 0;
    bool drifting = false;
    Real worst = 1.0;        // max baseline-relative ratio seen
    Real last_ratio = 1.0;
  };

  Channel& channel_ref(const std::string& name) MPAS_REQUIRES(mutex_);
  void notify_listeners() MPAS_EXCLUDES(mutex_);

  DriftPolicy policy_;
  mutable util::Mutex mutex_{"obs.profile.drift",
                             util::lockrank::kDriftMonitor};
  std::string metric_scope_ MPAS_GUARDED_BY(mutex_);
  std::map<std::string, Channel> channels_ MPAS_GUARDED_BY(mutex_);
  std::vector<DriftAlarm> alarm_log_ MPAS_GUARDED_BY(mutex_);
  std::vector<AlarmListener> listeners_ MPAS_GUARDED_BY(mutex_);
  std::vector<DriftAlarm> pending_notifications_ MPAS_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> alarms_{0};
};

}  // namespace mpas::obs::profiling
