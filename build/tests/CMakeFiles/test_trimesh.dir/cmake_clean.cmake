file(REMOVE_RECURSE
  "CMakeFiles/test_trimesh.dir/test_trimesh.cpp.o"
  "CMakeFiles/test_trimesh.dir/test_trimesh.cpp.o.d"
  "test_trimesh"
  "test_trimesh.pdb"
  "test_trimesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trimesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
