// Structured diagnostics for the schedule & data-flow verifier.
//
// Every checker (graph-level static checks, access-set replay, the
// happens-before race detector) reports through the same Diagnostic/Report
// types so tests, the verify_dataflow CLI, and the MPAS_VERIFY=1 model
// guard can all consume one format: a severity, a stable machine-readable
// code, the node ids and field name involved, and a human message.
#pragma once

#include <string>
#include <vector>

namespace mpas::analysis {

enum class Severity : int { Info = 0, Warning = 1, Error = 2 };

const char* to_string(Severity s);

/// One finding. `code` is a stable kebab-case identifier tests key on
/// ("missing-edge", "level-conflict", "halo-depth", "undeclared-write",
/// "undeclared-access", "race", ...). `node`/`other_node` are data-flow
/// node ids (or -1); `field` names the variable involved (or empty).
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string code;
  int node = -1;
  int other_node = -1;
  std::string field;
  std::string message;
};

/// An append-only collection of findings with severity accounting.
class Report {
 public:
  void add(Diagnostic d);
  void merge(const Report& other);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] int count(Severity s) const;
  [[nodiscard]] int errors() const { return count(Severity::Error); }
  [[nodiscard]] int warnings() const { return count(Severity::Warning); }
  [[nodiscard]] bool clean() const { return errors() == 0; }

  /// Number of findings carrying the given code (at any severity).
  [[nodiscard]] int count_code(const std::string& code) const;
  [[nodiscard]] bool has_code(const std::string& code) const {
    return count_code(code) > 0;
  }

  /// One "severity [code] message" line per finding.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace mpas::analysis
