// Measured per-kernel profiling of the real integrator, and the comparison
// of measured time *shares* against the machine model's predicted shares.
//
// Absolute times on the build machine mean little (different hardware from
// Table II), but the per-kernel *fractions* of a step are a property of the
// algorithm's operation mix — if the model's cost signatures are right, the
// predicted shares must match the measured ones. This is the validation
// loop behind the "building performance models" future-work item.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/profiling/perf_profiler.hpp"
#include "sw/reference.hpp"
#include "util/timer.hpp"

namespace mpas::sw {

/// Wall-time profile of `steps` steps of the reference integrator, broken
/// down by kernel function of Algorithm 1.
class StepProfiler {
 public:
  StepProfiler(const mesh::VoronoiMesh& mesh, SwParams params,
               LoopVariant variant);

  /// Run `steps` full RK-4 steps with per-kernel timing.
  void run(int steps);

  [[nodiscard]] const TimingStats& stats() const { return stats_; }

  struct Share {
    std::string kernel;
    Real measured_seconds = 0;
    Real measured_share = 0;   // fraction of the step spent here
  };
  [[nodiscard]] std::vector<Share> shares() const;

  [[nodiscard]] FieldStore& fields() { return fields_; }

 private:
  void compute_solve_diagnostics(FieldId h_in, FieldId u_in);

  const mesh::VoronoiMesh& mesh_;
  SwParams params_;
  LoopVariant variant_;
  FieldStore fields_;
  TimingStats stats_;

  /// Continuous-profiler slot for `section`, pre-resolved beside the
  /// TimingStats handle (same no-lookup-on-the-hot-path discipline); with
  /// the global profiler disabled each scope costs one relaxed load.
  [[nodiscard]] obs::profiling::ProfileHandle profile_handle(
      const std::string& section) const;

  // Sections resolved once in the constructor so the per-section cost in
  // run() is two clock reads and an atomic-free locked add — no string
  // hashing or map lookup inside the step loop.
  TimingStats::SectionHandle h_diagnostics_ = stats_.handle("compute_solve_diagnostics");
  TimingStats::SectionHandle h_setup_ = stats_.handle("step_setup");
  TimingStats::SectionHandle h_tend_ = stats_.handle("compute_tend");
  TimingStats::SectionHandle h_boundary_ = stats_.handle("enforce_boundary_edge");
  TimingStats::SectionHandle h_substep_ = stats_.handle("compute_next_substep_state");
  TimingStats::SectionHandle h_accum_ = stats_.handle("accumulative_update");
  TimingStats::SectionHandle h_reconstruct_ = stats_.handle("mpas_reconstruct");

  // Matching continuous-profiler slots (device "serial": the reference
  // integrator runs everything on one host thread).
  obs::profiling::ProfileHandle p_diagnostics_ =
      profile_handle("compute_solve_diagnostics");
  obs::profiling::ProfileHandle p_setup_ = profile_handle("step_setup");
  obs::profiling::ProfileHandle p_tend_ = profile_handle("compute_tend");
  obs::profiling::ProfileHandle p_boundary_ =
      profile_handle("enforce_boundary_edge");
  obs::profiling::ProfileHandle p_substep_ =
      profile_handle("compute_next_substep_state");
  obs::profiling::ProfileHandle p_accum_ =
      profile_handle("accumulative_update");
  obs::profiling::ProfileHandle p_reconstruct_ =
      profile_handle("mpas_reconstruct");
};

/// Model-side prediction in absolute seconds per step: per-kernel-group
/// modeled time of one full RK-4 step (setup + 3 x early + final) on the
/// given device. predicted_kernel_shares() is this, normalized.
std::map<std::string, Real> predicted_kernel_seconds(
    const machine::DeviceSpec& device, machine::OptLevel opt,
    std::int64_t cells);

/// Model-side prediction: per-kernel share of one step on the given device
/// at the given optimization level, from the pattern cost signatures.
std::map<std::string, Real> predicted_kernel_shares(
    const machine::DeviceSpec& device, machine::OptLevel opt,
    std::int64_t cells);

}  // namespace mpas::sw
