// Tiny leveled logger. Not asynchronous on purpose: log volume in this
// project is low (startup banners, bench progress) and synchronous writes
// keep ordering deterministic across the simulated ranks.
//
// The initial level comes from the MPAS_LOG_LEVEL environment variable
// (debug/info/warn/error/off, or 0-4) at first use. Every line carries the
// process-monotonic timestamp and the short thread id (util/timer), so log
// output lines up with Chrome-trace timestamps from src/obs.
#pragma once

#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace mpas {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Parse "debug" / "info" / "warn" / "error" / "off" (case-insensitive)
  /// or a numeric level 0-4. nullopt on anything else.
  static std::optional<LogLevel> parse_level(std::string_view text);

  void write(LogLevel level, const std::string& message);

 private:
  Logger();  // reads MPAS_LOG_LEVEL
  LogLevel level_ = LogLevel::Info;
  std::mutex mutex_;
};

namespace detail {
struct LogLine {
  LogLevel level;
  std::ostringstream stream;

  explicit LogLine(LogLevel lvl) : level(lvl) {}
  ~LogLine() { Logger::instance().write(level, stream.str()); }

  template <class T>
  LogLine& operator<<(const T& value) {
    stream << value;
    return *this;
  }
};
}  // namespace detail

}  // namespace mpas

#define MPAS_LOG_DEBUG ::mpas::detail::LogLine(::mpas::LogLevel::Debug)
#define MPAS_LOG_INFO ::mpas::detail::LogLine(::mpas::LogLevel::Info)
#define MPAS_LOG_WARN ::mpas::detail::LogLine(::mpas::LogLevel::Warn)
#define MPAS_LOG_ERROR ::mpas::detail::LogLine(::mpas::LogLevel::Error)
