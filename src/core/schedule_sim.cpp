// Discrete-event simulation of a hybrid schedule: two device timelines, one
// transfer-link timeline, per-field residency tracking, and halo-exchange
// barriers.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "core/schedule.hpp"
#include "util/error.hpp"

namespace mpas::core {

const char* to_string(DeviceSide side) {
  switch (side) {
    case DeviceSide::Host: return "host";
    case DeviceSide::Accel: return "accel";
    case DeviceSide::Split: return "split";
  }
  return "?";
}

Real node_time(const PatternNode& node, DeviceSide side,
               std::int64_t entities, const Schedule& schedule,
               const SimOptions& opts) {
  MPAS_CHECK(side != DeviceSide::Split);
  const bool host = side == DeviceSide::Host;
  const VariantChoice variant =
      host ? schedule.host_variant : schedule.accel_variant;
  const machine::KernelCost& cost = node.cost(variant);
  return machine::kernel_time(
      host ? opts.platform.host : opts.platform.accelerator, cost, entities,
      host ? opts.host_opt : opts.accel_opt,
      host ? opts.host_threads : opts.accel_threads);
}

namespace {

/// Where the current version of a field lives. For a split-produced field
/// each side initially holds only its own range; "complete" means the side
/// has (or has received) the full array.
struct FieldState {
  int version = -1;        // producing node id (-1: initial data)
  bool complete_on_host = true;
  bool complete_on_accel = true;  // initial data is resident everywhere
  Real ready_host = 0;     // time the side's copy (full or local half)
  Real ready_accel = 0;    //   becomes valid
  std::int64_t bytes = 0;
  Real host_fraction = 1.0;  // producer's split point
  bool split = false;
};

}  // namespace

SimResult simulate_schedule(const DataflowGraph& graph,
                            const Schedule& schedule, const MeshSizes& sizes,
                            const SimOptions& opts) {
  MPAS_CHECK(graph.finalized());
  MPAS_CHECK(schedule.assignments.size() ==
             static_cast<std::size_t>(graph.num_nodes()));

  Real host_free = 0, accel_free = 0, link_free = 0, barrier = 0;
  SimResult result;
  std::map<std::string, FieldState> fields;
  std::vector<Real> node_finish(static_cast<std::size_t>(graph.num_nodes()), 0);

  // Transfer helper: move the missing portion of field `name` to `side`,
  // returning the time it becomes available there.
  auto make_available = [&](const std::string& name, FieldState& f,
                            DeviceSide side) -> Real {
    const bool to_host = side == DeviceSide::Host;
    if (to_host && f.complete_on_host) return f.ready_host;
    if (!to_host && f.complete_on_accel) return f.ready_accel;
    // Bytes that must cross the link: the whole field, or only the remote
    // portion of a split-produced field.
    Real frac = 1.0;
    if (f.split) frac = to_host ? (1.0 - f.host_fraction) : f.host_fraction;
    const auto bytes = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(f.bytes) * frac));
    const Real src_ready = to_host ? f.ready_accel : f.ready_host;
    const Real start = std::max(link_free, src_ready);
    const Real finish = start + opts.platform.link.time(bytes);
    link_free = finish;
    result.link_busy += finish - start;
    result.link_bytes += bytes;
    if (opts.record_trace)
      result.trace.push_back({-1, side, start, finish,
                              TraceEntry::Kind::Transfer,
                              name + (to_host ? " ->host" : " ->accel")});
    // The side is complete once its local portion exists AND the remote
    // portion has arrived.
    if (to_host) {
      f.complete_on_host = true;
      f.ready_host = std::max(f.ready_host, finish);
      return f.ready_host;
    }
    f.complete_on_accel = true;
    f.ready_accel = std::max(f.ready_accel, finish);
    return f.ready_accel;
  };

  for (int id : graph.topological_order()) {
    const PatternNode& node = graph.node(id);
    const Assignment& asg = schedule.assignments[static_cast<std::size_t>(id)];
    const std::int64_t n = sizes.at(node.iterates);

    // Sides that will execute (and therefore need the inputs).
    const bool run_host = asg.side != DeviceSide::Accel;
    const bool run_accel = asg.side != DeviceSide::Host;
    MPAS_CHECK_MSG(asg.side != DeviceSide::Split || node.splittable,
                   "node " << node.label << " cannot be split");

    // Dependency readiness per executing side.
    Real ready_host = barrier, ready_accel = barrier;
    for (int p : graph.predecessors(id)) {
      ready_host = std::max(ready_host, node_finish[static_cast<std::size_t>(p)]);
      ready_accel = ready_host;  // refined below by data availability
    }
    for (const std::string& in : node.inputs) {
      auto it = fields.find(in);
      if (it == fields.end()) continue;  // incoming value: everywhere at t=0
      if (run_host)
        ready_host = std::max(
            ready_host, make_available(in, it->second, DeviceSide::Host));
      if (run_accel)
        ready_accel = std::max(
            ready_accel, make_available(in, it->second, DeviceSide::Accel));
    }

    // Execute.
    Real finish = 0;
    const Real host_frac =
        asg.side == DeviceSide::Host
            ? 1.0
            : (asg.side == DeviceSide::Accel ? 0.0 : asg.host_fraction);
    Real host_finish = 0, accel_finish = 0;
    if (host_frac > 0) {
      const auto nh = static_cast<std::int64_t>(
          std::llround(static_cast<double>(n) * host_frac));
      const Real t = node_time(node, DeviceSide::Host, nh, schedule, opts);
      const Real start = std::max(host_free, ready_host);
      host_finish = start + t;
      host_free = host_finish;
      result.host_busy += t;
      if (opts.record_trace)
        result.trace.push_back({id, DeviceSide::Host, start, host_finish,
                                TraceEntry::Kind::Compute, {}});
    }
    if (host_frac < 1.0) {
      const auto na = static_cast<std::int64_t>(
          std::llround(static_cast<double>(n) * (1.0 - host_frac)));
      const Real t = node_time(node, DeviceSide::Accel, na, schedule, opts);
      const Real start = std::max(accel_free, ready_accel);
      accel_finish = start + t;
      accel_free = accel_finish;
      result.accel_busy += t;
      if (opts.record_trace)
        result.trace.push_back({id, DeviceSide::Accel, start, accel_finish,
                                TraceEntry::Kind::Compute, {}});
    }
    finish = std::max(host_finish, accel_finish);
    node_finish[static_cast<std::size_t>(id)] = finish;

    // Record output residency.
    for (const std::string& out : node.outputs) {
      FieldState& f = fields[out];
      f.version = id;
      f.bytes = sizes.at(node.iterates) * static_cast<std::int64_t>(sizeof(Real));
      f.host_fraction = host_frac;
      if (asg.side == DeviceSide::Split) {
        // Each side holds only its own range; make_available moves the
        // remote portion on demand.
        f.split = true;
        f.complete_on_host = false;
        f.complete_on_accel = false;
        f.ready_host = host_finish;
        f.ready_accel = accel_finish;
      } else {
        f.split = false;
        f.complete_on_host = asg.side == DeviceSide::Host;
        f.complete_on_accel = asg.side == DeviceSide::Accel;
        f.ready_host = host_finish;
        f.ready_accel = accel_finish;
      }
    }

    // Halo-exchange barrier (the red sync marks of Figure 4).
    if (graph.has_halo_sync_after(id) && opts.halo_neighbors > 0) {
      // The exchanged fields must be on the host (MPI runs there), the
      // wire time is neighbor messages, then results go back down.
      Real t = finish;
      std::int64_t halo = opts.halo_bytes_per_sync;
      for (const std::string& out : node.outputs) {
        auto it = fields.find(out);
        if (it != fields.end())
          t = std::max(t, make_available(out, it->second, DeviceSide::Host));
      }
      const std::int64_t per_neighbor =
          std::max<std::int64_t>(1, halo / opts.halo_neighbors);
      Real wire = 0;
      for (int k = 0; k < opts.halo_neighbors; ++k)
        wire += opts.platform.network.message_time(per_neighbor);
      if (opts.record_trace && wire > 0)
        result.trace.push_back({-1, DeviceSide::Host, t, t + wire,
                                TraceEntry::Kind::HaloComm,
                                "halo after " + node.label});
      t += wire;
      result.comm_seconds += wire;
      // Updated halo values go back to the accelerator copy.
      const Real up = opts.platform.link.time(halo);
      const Real up_start = std::max(link_free, t);
      link_free = up_start + up;
      result.link_busy += up;
      result.link_bytes += halo;
      if (opts.record_trace && up > 0)
        result.trace.push_back({-1, DeviceSide::Accel, up_start, link_free,
                                TraceEntry::Kind::Transfer,
                                "halo ->accel after " + node.label});
      barrier = std::max(barrier, link_free);
      host_free = std::max(host_free, t);
    }
  }

  result.makespan = std::max({host_free, accel_free, barrier});
  return result;
}

std::string render_gantt(const DataflowGraph& graph, const SimResult& result,
                         int width) {
  MPAS_CHECK(width > 20);
  std::string out;
  if (result.trace.empty() || result.makespan <= 0) {
    return "(no trace recorded — set SimOptions::record_trace)\n";
  }
  const Real scale = width / result.makespan;
  for (DeviceSide side : {DeviceSide::Host, DeviceSide::Accel}) {
    std::string lane(static_cast<std::size_t>(width), '.');
    for (const TraceEntry& t : result.trace) {
      if (t.side != side || t.kind != TraceEntry::Kind::Compute) continue;
      auto clamp_col = [&](Real x) {
        return std::min<int>(width - 1, std::max(0, static_cast<int>(x * scale)));
      };
      const int a = clamp_col(t.start);
      const int b = clamp_col(t.finish);
      const std::string& label = graph.node(t.node).label;
      for (int i = a; i <= b; ++i)
        lane[static_cast<std::size_t>(i)] =
            label[label.size() > 1 && (i - a) % 2 == 1 ? 1 : 0];
    }
    out += (side == DeviceSide::Host ? "host  |" : "accel |");
    out += lane;
    out += "|\n";
  }
  out += "        0";
  out += std::string(static_cast<std::size_t>(width - 10), ' ');
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3gs\n", result.makespan);
  out += buf;
  return out;
}

}  // namespace mpas::core
