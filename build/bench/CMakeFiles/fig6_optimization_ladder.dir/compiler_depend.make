# Empty compiler generated dependencies file for fig6_optimization_ladder.
# This may be replaced when dependencies are built.
