file(REMOVE_RECURSE
  "CMakeFiles/mpas_sw.dir/fields.cpp.o"
  "CMakeFiles/mpas_sw.dir/fields.cpp.o.d"
  "CMakeFiles/mpas_sw.dir/invariants.cpp.o"
  "CMakeFiles/mpas_sw.dir/invariants.cpp.o.d"
  "CMakeFiles/mpas_sw.dir/kernels_diagnostics.cpp.o"
  "CMakeFiles/mpas_sw.dir/kernels_diagnostics.cpp.o.d"
  "CMakeFiles/mpas_sw.dir/kernels_reconstruct.cpp.o"
  "CMakeFiles/mpas_sw.dir/kernels_reconstruct.cpp.o.d"
  "CMakeFiles/mpas_sw.dir/kernels_tend.cpp.o"
  "CMakeFiles/mpas_sw.dir/kernels_tend.cpp.o.d"
  "CMakeFiles/mpas_sw.dir/kernels_tracer.cpp.o"
  "CMakeFiles/mpas_sw.dir/kernels_tracer.cpp.o.d"
  "CMakeFiles/mpas_sw.dir/kernels_update.cpp.o"
  "CMakeFiles/mpas_sw.dir/kernels_update.cpp.o.d"
  "CMakeFiles/mpas_sw.dir/model.cpp.o"
  "CMakeFiles/mpas_sw.dir/model.cpp.o.d"
  "CMakeFiles/mpas_sw.dir/output.cpp.o"
  "CMakeFiles/mpas_sw.dir/output.cpp.o.d"
  "CMakeFiles/mpas_sw.dir/profiler.cpp.o"
  "CMakeFiles/mpas_sw.dir/profiler.cpp.o.d"
  "CMakeFiles/mpas_sw.dir/reference.cpp.o"
  "CMakeFiles/mpas_sw.dir/reference.cpp.o.d"
  "CMakeFiles/mpas_sw.dir/testcases.cpp.o"
  "CMakeFiles/mpas_sw.dir/testcases.cpp.o.d"
  "libmpas_sw.a"
  "libmpas_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpas_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
